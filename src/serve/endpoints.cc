#include "serve/endpoints.h"

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "obs/json.h"
#include "util/string_util.h"

namespace e2dtc::serve {

namespace {

obs::HttpResponse JsonResponse(int status, obs::Json body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = body.Dump();
  response.body += "\n";
  return response;
}

obs::HttpResponse ErrorResponse(int status, const std::string& message) {
  obs::Json body = obs::Json::Object();
  body.Set("error", message);
  return JsonResponse(status, std::move(body));
}

obs::HttpResponse OverloadResponse(const ServeService& service,
                                   const std::string& message) {
  obs::HttpResponse response = ErrorResponse(503, message);
  response.headers.push_back(
      {"Retry-After", StrFormat("%d", service.options().retry_after_seconds)});
  return response;
}

/// Hard ceiling on client-supplied deadlines: one hour. Anything larger is
/// indistinguishable from "never expire", which defeats queue hygiene.
constexpr double kMaxDeadlineMs = 3600.0 * 1000.0;

}  // namespace

std::string ParseServeRequestBody(const std::string& text, ServeRequest* out) {
  obs::Json body;
  std::string error;
  if (!obs::Json::Parse(text, &body, &error)) {
    return "malformed JSON: " + error;
  }
  if (!body.is_object()) return "request body must be a JSON object";
  const obs::Json* trajectories = body.Find("trajectories");
  if (trajectories == nullptr || !trajectories->is_array() ||
      trajectories->size() == 0) {
    return "missing non-empty \"trajectories\" array";
  }
  for (size_t i = 0; i < trajectories->size(); ++i) {
    const obs::Json& t = trajectories->at(i);
    const obs::Json* points = t.is_object() ? t.Find("points") : nullptr;
    if (points == nullptr || !points->is_array() || points->size() == 0) {
      return StrFormat(
          "trajectories[%zu] must be an object with a non-empty "
          "\"points\" array",
          i);
    }
    geo::Trajectory trajectory;
    trajectory.id = static_cast<int64_t>(i);
    if (const obs::Json* id = t.Find("id"); id != nullptr && id->is_number()) {
      trajectory.id = static_cast<int64_t>(id->number());
    }
    trajectory.points.reserve(points->size());
    for (size_t p = 0; p < points->size(); ++p) {
      const obs::Json& pt = points->at(p);
      if (!pt.is_array() || pt.size() < 2 || !pt.at(0).is_number() ||
          !pt.at(1).is_number()) {
        return StrFormat("trajectories[%zu].points[%zu] must be [lon, lat]",
                         i, p);
      }
      const double lon = pt.at(0).number();
      const double lat = pt.at(1).number();
      if (!geo::IsValidLonLat(lon, lat)) {
        return StrFormat(
            "trajectories[%zu].points[%zu] is not a valid WGS-84 "
            "coordinate",
            i, p);
      }
      // [lon, lat, t]: honor the client timestamp; [lon, lat]: fall back
      // to the point index as a synthetic ordering.
      double t = static_cast<double>(trajectory.points.size());
      if (pt.size() >= 3) {
        if (!pt.at(2).is_number()) {
          return StrFormat(
              "trajectories[%zu].points[%zu] third element (timestamp) "
              "must be a number",
              i, p);
        }
        t = pt.at(2).number();
      }
      trajectory.points.push_back({lon, lat, t});
    }
    out->trajectories.push_back(std::move(trajectory));
  }
  if (const obs::Json* deadline = body.Find("deadline_ms");
      deadline != nullptr) {
    // Range-check before the int cast: casting an out-of-int-range or NaN
    // double is undefined behavior, and a client can trivially send 1e300.
    // The `>= 1.0` comparison is false for NaN, so NaN lands in the error
    // branch too.
    if (!deadline->is_number()) {
      return "\"deadline_ms\" must be a number";
    }
    const double v = deadline->number();
    if (!(v >= 1.0) || v > kMaxDeadlineMs) {
      return StrFormat("\"deadline_ms\" must be in [1, %.0f]", kMaxDeadlineMs);
    }
    out->deadline_ms = static_cast<int>(v);
  }
  if (const obs::Json* adapt = body.Find("adapt");
      adapt != nullptr && adapt->is_bool()) {
    out->adapt = adapt->bool_value();
  }
  if (const obs::Json* k = body.Find("k"); k != nullptr) {
    if (!k->is_number() || !(k->number() >= 1.0) || k->number() > 1024.0) {
      return "\"k\" must be a number in [1, 1024]";
    }
    out->top_k = static_cast<int>(k->number());
  }
  if (const obs::Json* probes = body.Find("probes"); probes != nullptr) {
    if (!probes->is_number() || !(probes->number() >= 1.0) ||
        probes->number() > 65536.0) {
      return "\"probes\" must be a number in [1, 65536]";
    }
    out->probes = static_cast<int>(probes->number());
  }
  return "";
}

namespace {

obs::HttpResponse HandleServe(ServeService* service, RequestKind kind,
                              const obs::HttpRequest& http_request) {
  ServeRequest request;
  request.kind = kind;
  if (std::string error = ParseServeRequestBody(http_request.body, &request);
      !error.empty()) {
    return ErrorResponse(400, error);
  }
  const size_t n = request.trajectories.size();
  std::future<ServeResult> future;
  switch (service->Submit(std::move(request), &future)) {
    case Admit::kShed:
      return OverloadResponse(*service, "overloaded: request queue full");
    case Admit::kDraining:
      return OverloadResponse(*service, "draining: not admitting requests");
    case Admit::kOk:
      break;
  }
  ServeResult result = future.get();
  if (result.status == 504) {
    return ErrorResponse(504, "deadline exceeded before processing");
  }
  obs::Json body = obs::Json::Object();
  if (kind == RequestKind::kEmbed) {
    obs::Json rows = obs::Json::Array();
    for (const auto& embedding : result.embeddings) {
      obs::Json row = obs::Json::Array();
      for (float v : embedding) row.Append(static_cast<double>(v));
      rows.Append(std::move(row));
    }
    body.Set("embeddings", std::move(rows));
    body.Set("hidden", service->context()->hidden_size());
  } else if (kind == RequestKind::kNeighbors) {
    obs::Json per_trajectory = obs::Json::Array();
    for (const auto& hits : result.neighbors) {
      obs::Json list = obs::Json::Array();
      for (const auto& hit : hits) {
        obs::Json entry = obs::Json::Object();
        entry.Set("id", hit.id);
        entry.Set("distance", hit.distance);
        list.Append(std::move(entry));
      }
      per_trajectory.Append(std::move(list));
    }
    body.Set("neighbors", std::move(per_trajectory));
    body.Set("index_size", service->context()->neighbor_index()->size());
  } else {
    obs::Json clusters = obs::Json::Array();
    for (int c : result.clusters) clusters.Append(c);
    body.Set("clusters", std::move(clusters));
    body.Set("k", service->context()->k());
    if (service->options().use_ann) {
      body.Set("ann_fallbacks", result.ann_fallbacks);
    }
  }
  body.Set("count", static_cast<uint64_t>(n));
  body.Set("latency_ms", result.latency_ms);
  body.Set("batch_size", result.batch_size);
  return JsonResponse(200, std::move(body));
}

obs::Json StatsJson(const ServeService& service) {
  const ServeStats stats = service.stats();
  obs::Json j = obs::Json::Object();
  j.Set("ready", service.ready());
  j.Set("draining", service.draining());
  j.Set("accepted", stats.accepted);
  j.Set("served", stats.served);
  j.Set("shed", stats.shed);
  j.Set("rejected_draining", stats.rejected_draining);
  j.Set("expired", stats.expired);
  j.Set("batches", stats.batches);
  j.Set("queue_depth", stats.queue_depth);
  j.Set("dropped_in_flight", stats.dropped_in_flight());
  obs::Json options = obs::Json::Object();
  options.Set("max_queue", service.options().max_queue);
  options.Set("max_batch", service.options().max_batch);
  options.Set("batch_window_us", service.options().batch_window_us);
  options.Set("default_deadline_ms", service.options().default_deadline_ms);
  options.Set("retry_after_seconds", service.options().retry_after_seconds);
  options.Set("chaos_stall_us", service.options().chaos_stall_us);
  options.Set("use_ann", service.options().use_ann);
  options.Set("ann_probes", service.options().ann_probes);
  j.Set("options", std::move(options));
  const ServeContext* context = service.context();
  obs::Json ann = obs::Json::Object();
  ann.Set("assign_enabled",
          service.options().use_ann && context->assigner() != nullptr);
  if (const auto* index = context->neighbor_index(); index != nullptr) {
    obs::Json idx = obs::Json::Object();
    idx.Set("size", index->size());
    idx.Set("leaves", index->num_leaves());
    idx.Set("depth", index->depth());
    ann.Set("neighbor_index", std::move(idx));
  }
  j.Set("ann", std::move(ann));
  return j;
}

}  // namespace

void RegisterServeEndpoints(obs::HttpServer* server, ServeService* service) {
  server->HandlePost("/v1/embed", [service](const obs::HttpRequest& request) {
    return HandleServe(service, RequestKind::kEmbed, request);
  });
  server->HandlePost("/v1/assign", [service](const obs::HttpRequest& request) {
    return HandleServe(service, RequestKind::kAssign, request);
  });
  server->HandlePost(
      "/v1/neighbors", [service](const obs::HttpRequest& request) {
        if (service->context()->neighbor_index() == nullptr) {
          return ErrorResponse(
              503,
              "no neighbor index loaded (start with --ann-corpus or "
              "--ann-index)");
        }
        return HandleServe(service, RequestKind::kNeighbors, request);
      });
  server->Handle("/v1/stats", [service](const obs::HttpRequest&) {
    obs::Json j = StatsJson(*service);
    j.Set("model", service->context()->model_path());
    j.Set("k", service->context()->k());
    j.Set("hidden", service->context()->hidden_size());
    return JsonResponse(200, std::move(j));
  });
  // Overrides the introspection-plane /readyz: a serve process is ready
  // only after warmup and stops being ready the moment drain begins, so
  // load balancers stop routing before the listener goes away.
  server->Handle("/readyz", [service](const obs::HttpRequest&) {
    obs::HttpResponse response;
    if (service->ready() && !service->draining()) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = service->draining() ? "draining\n" : "warming up\n";
    }
    return response;
  });
}

}  // namespace e2dtc::serve
