#ifndef E2DTC_SERVE_ENDPOINTS_H_
#define E2DTC_SERVE_ENDPOINTS_H_

#include <string>

#include "obs/http_server.h"
#include "serve/service.h"

namespace e2dtc::serve {

/// Parses the shared request-body shape (trajectories with [lon, lat] or
/// [lon, lat, t] points, optional id/deadline_ms/adapt/k/probes fields)
/// into `*out`. Returns an empty string on success, else the message the
/// endpoint should answer 400 with. Exposed for direct testing.
std::string ParseServeRequestBody(const std::string& text, ServeRequest* out);

/// Wires the serving plane onto `server` (call before Start, after
/// core::RegisterIntrospectionEndpoints so the serve-aware /readyz
/// override wins):
///
///   POST /v1/embed     {"trajectories":[{"points":[[lon,lat,t?],...]},...],
///                       "deadline_ms":N}
///                   -> {"embeddings":[[...],...], "hidden":H, ...}
///   POST /v1/assign    same body + "adapt":bool
///                   -> {"clusters":[...], "k":K, ...}
///   POST /v1/neighbors same body + "k":N + "probes":P
///                   -> {"neighbors":[[{"id":..,"distance":..},...],...]}
///                      (503 until a neighbor index is built or loaded)
///   GET  /v1/stats   -> admission/serving counters, options, model info
///   GET  /readyz     -> 200 only when warmed up and not draining
///
/// Overload semantics: shed and draining requests get 503 with a
/// Retry-After header; requests whose deadline expires in the queue get
/// 504. Malformed bodies get 400. See docs/serving.md.
void RegisterServeEndpoints(obs::HttpServer* server, ServeService* service);

}  // namespace e2dtc::serve

#endif  // E2DTC_SERVE_ENDPOINTS_H_
