#include "serve/retry.h"

namespace e2dtc::serve {

uint64_t RetryPolicy::BackoffMicros(int attempt, Rng* rng) const {
  if (attempt < 0) attempt = 0;
  // base << attempt, saturating well before uint64 overflow.
  uint64_t ceiling = base_us;
  for (int i = 0; i < attempt && ceiling < max_us; ++i) ceiling <<= 1;
  if (ceiling > max_us) ceiling = max_us;
  if (ceiling == 0) return 0;
  return rng->UniformU64(ceiling);
}

}  // namespace e2dtc::serve
