#ifndef E2DTC_SERVE_CONTEXT_H_
#define E2DTC_SERVE_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "ann/soft_assign.h"
#include "ann/vocab_tree.h"
#include "core/e2dtc.h"
#include "core/online.h"
#include "geo/trajectory.h"
#include "util/result.h"

namespace e2dtc::serve {

/// The frozen model a serve process answers queries from: an
/// E2dtcPipeline loaded from disk (encoder + vocab + trained centroids)
/// plus the OnlineClusterer that adapts those centroids as traffic flows.
///
/// Open() accepts either a model file or a directory. Given a directory it
/// scans for *.e2dtc files and loads the newest readable one — every load
/// is CRC-verified by the model format, so a torn or bit-rotted file from a
/// crashed trainer is skipped (with a logged warning) in favor of the
/// previous good model, mirroring ckpt::Checkpointer::LoadLatest.
class ServeContext {
 public:
  /// `count_prior` is forwarded to the OnlineClusterer (pseudo-observations
  /// per centroid; larger = more conservative adaptation).
  static Result<std::unique_ptr<ServeContext>> Open(const std::string& path,
                                                    double count_prior = 32.0);

  const core::E2dtcPipeline& pipeline() const { return *pipeline_; }
  core::OnlineClusterer& clusterer() { return *clusterer_; }
  const core::OnlineClusterer& clusterer() const { return *clusterer_; }

  /// Builds the confidence-gated approximate assigner over the trained
  /// centroid snapshot (the approximation never tracks online adaptation;
  /// adapt=true requests must use the exact path).
  Status EnableApproxAssign(const ann::SoftAssignOptions& options);

  /// Builds the /v1/neighbors index: embeds `corpus` through the frozen
  /// encoder (in bounded chunks, so startup memory stays flat) and indexes
  /// the embeddings under each trajectory's id.
  Status BuildNeighborIndex(const std::vector<geo::Trajectory>& corpus,
                            const ann::VocabTreeOptions& options);

  /// Loads a prebuilt neighbor index; rejects one whose dimensionality
  /// does not match this model's embedding size.
  Status LoadNeighborIndex(const std::string& path);
  /// Saves the current neighbor index (requires one to be present).
  Status SaveNeighborIndex(const std::string& path) const;

  /// Null until EnableApproxAssign / Build-or-LoadNeighborIndex succeed.
  const ann::ApproxAssigner* assigner() const { return assigner_.get(); }
  const ann::VocabTree* neighbor_index() const {
    return neighbor_index_.get();
  }

  /// The file the model was actually loaded from (after any directory scan).
  const std::string& model_path() const { return model_path_; }
  /// Files that failed their integrity check during the directory scan.
  int skipped_unreadable() const { return skipped_unreadable_; }

  int hidden_size() const {
    return pipeline_->fit_result().centroids.cols();
  }
  int k() const { return clusterer_->k(); }

 private:
  ServeContext() = default;

  std::unique_ptr<core::E2dtcPipeline> pipeline_;
  std::unique_ptr<core::OnlineClusterer> clusterer_;
  std::unique_ptr<ann::ApproxAssigner> assigner_;
  std::unique_ptr<ann::VocabTree> neighbor_index_;
  std::string model_path_;
  int skipped_unreadable_ = 0;
};

}  // namespace e2dtc::serve

#endif  // E2DTC_SERVE_CONTEXT_H_
