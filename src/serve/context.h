#ifndef E2DTC_SERVE_CONTEXT_H_
#define E2DTC_SERVE_CONTEXT_H_

#include <memory>
#include <string>

#include "core/e2dtc.h"
#include "core/online.h"
#include "util/result.h"

namespace e2dtc::serve {

/// The frozen model a serve process answers queries from: an
/// E2dtcPipeline loaded from disk (encoder + vocab + trained centroids)
/// plus the OnlineClusterer that adapts those centroids as traffic flows.
///
/// Open() accepts either a model file or a directory. Given a directory it
/// scans for *.e2dtc files and loads the newest readable one — every load
/// is CRC-verified by the model format, so a torn or bit-rotted file from a
/// crashed trainer is skipped (with a logged warning) in favor of the
/// previous good model, mirroring ckpt::Checkpointer::LoadLatest.
class ServeContext {
 public:
  /// `count_prior` is forwarded to the OnlineClusterer (pseudo-observations
  /// per centroid; larger = more conservative adaptation).
  static Result<std::unique_ptr<ServeContext>> Open(const std::string& path,
                                                    double count_prior = 32.0);

  const core::E2dtcPipeline& pipeline() const { return *pipeline_; }
  core::OnlineClusterer& clusterer() { return *clusterer_; }
  const core::OnlineClusterer& clusterer() const { return *clusterer_; }

  /// The file the model was actually loaded from (after any directory scan).
  const std::string& model_path() const { return model_path_; }
  /// Files that failed their integrity check during the directory scan.
  int skipped_unreadable() const { return skipped_unreadable_; }

  int hidden_size() const {
    return pipeline_->fit_result().centroids.cols();
  }
  int k() const { return clusterer_->k(); }

 private:
  ServeContext() = default;

  std::unique_ptr<core::E2dtcPipeline> pipeline_;
  std::unique_ptr<core::OnlineClusterer> clusterer_;
  std::string model_path_;
  int skipped_unreadable_ = 0;
};

}  // namespace e2dtc::serve

#endif  // E2DTC_SERVE_CONTEXT_H_
