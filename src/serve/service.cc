#include "serve/service.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace e2dtc::serve {

namespace {

/// Hot-path metric handles, resolved once (registry lookup takes a lock;
/// recording through handles is lock-free and no-op while metrics are off).
struct ServeMetrics {
  obs::Gauge queue_depth;
  obs::Counter accepted;
  obs::Counter served;
  obs::Counter shed;
  obs::Counter rejected_draining;
  obs::Counter expired;
  obs::Counter ann_assign_approx;
  obs::Counter ann_assign_fallback;
  obs::Histogram batch_size;
  obs::Histogram latency_ms;

  static ServeMetrics& Get() {
    static ServeMetrics m{
        obs::Registry::Global().gauge("serve.queue_depth"),
        obs::Registry::Global().counter("serve.requests_accepted"),
        obs::Registry::Global().counter("serve.requests_served"),
        obs::Registry::Global().counter("serve.requests_shed"),
        obs::Registry::Global().counter("serve.requests_rejected_draining"),
        obs::Registry::Global().counter("serve.requests_expired"),
        obs::Registry::Global().counter("serve.ann_assign_approx"),
        obs::Registry::Global().counter("serve.ann_assign_fallback"),
        obs::Registry::Global().histogram(
            "serve.batch_size", obs::ExponentialBuckets(1.0, 2.0, 8)),
        obs::Registry::Global().histogram(
            "serve.latency_ms", obs::ExponentialBuckets(0.1, 2.0, 16)),
    };
    return m;
  }
};

}  // namespace

/// One admitted request riding the queue: the request, its absolute
/// deadline, and the promise the batcher fulfills.
struct ServeService::Pending {
  ServeRequest request;
  std::promise<ServeResult> promise;
  uint64_t enqueue_us = 0;
  uint64_t deadline_us = 0;
};

ServeService::ServeService(ServeContext* context, ServeOptions options)
    : context_(context), options_(options) {
  E2DTC_CHECK(context != nullptr);
  E2DTC_CHECK_GT(options_.max_queue, 0);
  E2DTC_CHECK_GT(options_.max_batch, 0);
  // A non-positive default would wrap through the microsecond conversion in
  // Submit into a deadline ~585 million years out, silently disabling 504
  // expiry for every request that doesn't carry its own deadline.
  E2DTC_CHECK_GT(options_.default_deadline_ms, 0);
  queue_ = std::make_unique<BoundedQueue<Pending>>(
      static_cast<size_t>(options_.max_queue));
  batcher_ = std::thread([this] { BatcherLoop(); });
}

ServeService::~ServeService() { Drain(); }

Admit ServeService::Submit(ServeRequest request,
                           std::future<ServeResult>* result) {
  auto& metrics = ServeMetrics::Get();
  if (draining_.load(std::memory_order_acquire)) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected_draining.Increment();
    return Admit::kDraining;
  }
  // Clamp before the microsecond conversion: a non-positive deadline would
  // wrap through the uint64_t cast into one that never expires. The option
  // is validated positive at construction; the clamp also covers any caller
  // handing a mangled request struct straight to Submit.
  int deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                            : options_.default_deadline_ms;
  if (deadline_ms <= 0) deadline_ms = 1;
  Pending pending;
  pending.request = std::move(request);
  pending.enqueue_us = obs::MonotonicMicros();
  pending.deadline_us =
      pending.enqueue_us + static_cast<uint64_t>(deadline_ms) * 1000;
  std::future<ServeResult> future = pending.promise.get_future();
  if (!queue_->TryPush(std::move(pending))) {
    // Distinguish why: BeginDrain stores draining_ (release) before closing
    // the queue, so a push that failed because the queue closed observes
    // draining_ here. Only a genuinely full queue is an overload shed.
    if (draining_.load(std::memory_order_acquire)) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected_draining.Increment();
      return Admit::kDraining;
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    metrics.shed.Increment();
    return Admit::kShed;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metrics.accepted.Increment();
  metrics.queue_depth.Set(static_cast<double>(queue_->size()));
  *result = std::move(future);
  return Admit::kOk;
}

void ServeService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  queue_->Close();
}

void ServeService::Drain() {
  BeginDrain();
  if (batcher_.joinable()) batcher_.join();
  drained_.store(true, std::memory_order_release);
}

ServeStats ServeService::stats() const {
  ServeStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_->size();
  return s;
}

void ServeService::BatcherLoop() {
  // Warmup: one forward pass primes every lazily-sized kernel buffer and
  // pages the weights in, so the first real request doesn't pay the
  // cold-start cost. /readyz stays 503 until this completes.
  {
    geo::Trajectory warm;
    warm.points = {{0.0, 0.0, 0.0}, {0.001, 0.001, 1.0}};
    context_->pipeline().Embed({warm});
    ready_.store(true, std::memory_order_release);
  }
  for (;;) {
    std::vector<Pending> batch = queue_->PopBatch(
        static_cast<size_t>(options_.max_batch), options_.batch_window_us);
    ServeMetrics::Get().queue_depth.Set(static_cast<double>(queue_->size()));
    if (batch.empty()) return;  // Closed and drained.
    RunBatch(std::move(batch));
  }
}

void ServeService::RunBatch(std::vector<Pending>&& batch) {
  auto& metrics = ServeMetrics::Get();
  if (options_.chaos_stall_us > 0) {
    // Chaos mode: simulate a slow batch (page-cache miss, CPU contention)
    // so tests can observe the queue backing up and admission shedding.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.chaos_stall_us));
  }

  // Cooperative cancellation: answer expired requests 504 *before* the
  // forward pass so a backed-up queue never spends encoder time on work
  // nobody is waiting for.
  const uint64_t now_us = obs::MonotonicMicros();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    if (now_us >= pending.deadline_us) {
      ServeResult result;
      result.status = 504;
      result.latency_ms =
          static_cast<double>(now_us - pending.enqueue_us) / 1000.0;
      expired_.fetch_add(1, std::memory_order_relaxed);
      metrics.expired.Increment();
      pending.promise.set_value(std::move(result));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  // One coalesced forward pass for every live request. Each output row
  // depends only on its own trajectory (length-bucketed encode + per-row
  // copy-out), so the result is bitwise identical to per-request embeds.
  std::vector<geo::Trajectory> trajectories;
  std::vector<std::pair<int, int>> spans;  // (first row, row count)
  spans.reserve(live.size());
  for (const auto& pending : live) {
    spans.emplace_back(static_cast<int>(trajectories.size()),
                       static_cast<int>(pending.request.trajectories.size()));
    trajectories.insert(trajectories.end(),
                        pending.request.trajectories.begin(),
                        pending.request.trajectories.end());
  }
  const nn::Tensor embeddings = context_->pipeline().Embed(trajectories);
  const uint64_t done_us = obs::MonotonicMicros();

  batches_.fetch_add(1, std::memory_order_relaxed);
  metrics.batch_size.Record(static_cast<double>(live.size()));

  for (size_t i = 0; i < live.size(); ++i) {
    Pending& pending = live[i];
    const auto [first, count] = spans[i];
    ServeResult result;
    result.latency_ms =
        static_cast<double>(done_us - pending.enqueue_us) / 1000.0;
    result.batch_size = static_cast<int>(live.size());
    if (pending.request.kind == RequestKind::kEmbed) {
      result.embeddings.reserve(static_cast<size_t>(count));
      for (int r = 0; r < count; ++r) {
        const float* row = embeddings.row(first + r);
        result.embeddings.emplace_back(row, row + embeddings.cols());
      }
    } else if (pending.request.kind == RequestKind::kNeighbors) {
      // Endpoint-level guard admits kNeighbors only with an index present.
      const ann::VocabTree* index = context_->neighbor_index();
      E2DTC_CHECK(index != nullptr);
      const int probes = pending.request.probes > 0 ? pending.request.probes
                                                    : options_.ann_probes;
      result.neighbors.reserve(static_cast<size_t>(count));
      for (int r = 0; r < count; ++r) {
        result.neighbors.push_back(
            index->TopK(embeddings.row(first + r), pending.request.top_k,
                        probes));
      }
    } else if (options_.use_ann && context_->assigner() != nullptr &&
               !pending.request.adapt) {
      // Approximate assignment only ever reads the frozen trained-centroid
      // snapshot, so adapt=true requests stay on the exact path (they must
      // observe — and move — the live online centroids).
      const nn::Tensor rows = embeddings.SliceRows(first, count);
      int64_t fallbacks = 0;
      result.clusters =
          context_->assigner()->AssignEmbedded(rows, &fallbacks);
      result.ann_fallbacks = static_cast<int>(fallbacks);
      metrics.ann_assign_approx.Increment(
          static_cast<uint64_t>(count) - static_cast<uint64_t>(fallbacks));
      metrics.ann_assign_fallback.Increment(static_cast<uint64_t>(fallbacks));
    } else {
      const nn::Tensor rows = embeddings.SliceRows(first, count);
      result.clusters = pending.request.adapt
                            ? context_->clusterer().AssignAndAdaptEmbedded(rows)
                            : context_->clusterer().AssignEmbedded(rows);
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    metrics.served.Increment();
    metrics.latency_ms.Record(result.latency_ms);
    pending.promise.set_value(std::move(result));
  }
}

}  // namespace e2dtc::serve
