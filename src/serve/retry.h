#ifndef E2DTC_SERVE_RETRY_H_
#define E2DTC_SERVE_RETRY_H_

#include <cstdint>

#include "util/rng.h"

namespace e2dtc::serve {

/// Client-side retry policy for shed (503) responses: exponential backoff
/// with full jitter (AWS-style: sleep = uniform[0, min(cap, base * 2^n))),
/// which de-synchronizes a thundering herd of retrying clients far better
/// than equal-jitter variants. Deterministic given the caller's Rng, so the
/// soak driver and tests replay identical schedules.
struct RetryPolicy {
  uint64_t base_us = 1000;        ///< First-attempt backoff ceiling.
  uint64_t max_us = 256 * 1000;   ///< Backoff cap.
  int max_attempts = 6;           ///< Give up (surface the 503) after this.

  /// Backoff before retry `attempt` (0-based). Full jitter: uniform in
  /// [0, min(max_us, base_us << attempt)).
  uint64_t BackoffMicros(int attempt, Rng* rng) const;

  /// Whether a retry `attempt` (0-based) is allowed at all.
  bool ShouldRetry(int attempt) const { return attempt < max_attempts; }
};

}  // namespace e2dtc::serve

#endif  // E2DTC_SERVE_RETRY_H_
