#ifndef E2DTC_CORE_TRAIN_TELEMETRY_H_
#define E2DTC_CORE_TRAIN_TELEMETRY_H_

#include <string>

#include "core/seq2seq.h"
#include "nn/optimizer.h"

namespace e2dtc::core {

/// Installs a telemetry StepObserver on `optimizer` that records, per
/// optimizer step and per top-level module group (the first component of
/// each parameter's hierarchical name from model.NamedParameters(); extra
/// parameters such as the self-training "centroids" leaf group under their
/// own leaf name):
///
///   <phase>.grad_norm.<group>      post-clip gradient L2 norm
///   <phase>.grad_norm.total        global post-clip norm
///   <phase>.update_ratio.<group>   lr * ||g|| / (||w|| + eps)
///
/// The observer fires after the trainer's ClipGradNorm and before the
/// parameter update (see Optimizer::SetStepObserver), so the norms are
/// exactly what the update consumes. It self-gates on TelemetryEnabled():
/// installing it unconditionally costs one std::function call and a relaxed
/// load per optimizer step when telemetry is off.
void InstallGradTelemetry(nn::Optimizer* optimizer, const Seq2SeqModel& model,
                          const std::string& phase);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_TRAIN_TELEMETRY_H_
