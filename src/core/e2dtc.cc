#include "core/e2dtc.h"

#include <algorithm>

#include "cluster/elbow.h"
#include "cluster/kmeans.h"
#include "core/resume.h"
#include "core/status.h"
#include "embedding/skipgram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace e2dtc::core {

namespace {

/// Metric-name catalog for the pipeline facade, resolved once per process.
struct Instruments {
  obs::Counter fits = obs::Registry::Global().counter("fits");
  obs::Counter fit_trajectories =
      obs::Registry::Global().counter("fit.trajectories");
};

Instruments& Instr() {
  static Instruments* instr = new Instruments();
  return *instr;
}

}  // namespace

Result<std::unique_ptr<E2dtcPipeline>> E2dtcPipeline::Fit(
    const data::Dataset& dataset, const E2dtcConfig& config) {
  E2DTC_TRACE_SPAN("fit");
  Instr().fits.Increment();
  Instr().fit_trajectories.Increment(dataset.trajectories.size());
  if (dataset.trajectories.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  int k = config.self_train.k > 0 ? config.self_train.k
                                  : dataset.num_clusters;
  // k == 0 (no configured k, unlabeled data): select k automatically from
  // the elbow of the k-means inertia curve over the pre-trained embeddings
  // (the paper's Fig. 6(a) procedure), after phase 2 below.
  const bool auto_k = k == 0;
  if (!auto_k && k < 2) {
    return Status::InvalidArgument(
        StrFormat("cluster count must be >= 2, got %d", k));
  }
  if (!auto_k && static_cast<int>(dataset.trajectories.size()) < k) {
    return Status::InvalidArgument("fewer trajectories than clusters");
  }
  if (auto_k && static_cast<int>(dataset.trajectories.size()) < 8) {
    return Status::InvalidArgument(
        "automatic k selection needs at least 8 trajectories");
  }

  auto pipeline = std::unique_ptr<E2dtcPipeline>(new E2dtcPipeline());
  pipeline->config_ = config;
  if (config.num_encode_threads > 1) {
    pipeline->encode_pool_ =
        std::make_unique<ThreadPool>(config.num_encode_threads);
  }
  FitResult& fit = pipeline->fit_result_;
  fit.k = k;
  Stopwatch total_watch;

  ckpt::Checkpointer checkpointer(config.checkpoint);
  E2DTC_RETURN_IF_ERROR(checkpointer.Init());
  const std::optional<ckpt::PhaseSnapshot>& resume_snap =
      checkpointer.resume_snapshot();
  const bool resume_self_train =
      resume_snap.has_value() &&
      resume_snap->phase == ckpt::TrainPhase::kSelfTrain;
  if (resume_snap.has_value()) fit.resumed = true;
  if (resume_self_train && config.self_train.loss_mode == LossMode::kL0) {
    return Status::InvalidArgument(
        "cannot resume a self-training checkpoint under loss_mode L0 "
        "(the L0 ablation never runs phase 3)");
  }

  // ---- Phase 1: trajectory embedding (grid + vocabulary + skip-gram). ----
  // Phase boundaries are traced with an optional span so the existing
  // straight-line structure (phase N's outputs feed phase N+1) stays intact.
  std::optional<obs::ScopedSpan> phase_span;
  Stopwatch phase_watch;
  phase_span.emplace("fit.embed");
  TrainStatus::Global().Reset();
  TrainStatus::Global().SetResumed(fit.resumed);
  TrainStatus::Global().EnterPhase(FitPhase::kEmbed, /*total_epochs=*/0);
  const geo::BoundingBox box =
      geo::ComputeBoundingBox(dataset.trajectories, /*margin_deg=*/1e-3);
  E2DTC_ASSIGN_OR_RETURN(geo::Grid grid,
                         geo::Grid::Create(box, config.model.cell_meters));
  pipeline->vocab_ = geo::Vocabulary::Build(grid, dataset.trajectories,
                                            config.model.vocab_min_count);
  const geo::Vocabulary& vocab = *pipeline->vocab_;
  if (vocab.num_cell_tokens() < 2) {
    return Status::FailedPrecondition(
        "degenerate vocabulary: all trajectories fall in one cell");
  }
  const double alpha = config.model.knn_alpha_meters > 0.0
                           ? config.model.knn_alpha_meters
                           : config.model.cell_meters / 4.0;
  pipeline->knn_ = vocab.BuildKnnTable(config.model.knn_k, alpha);

  Rng rng(config.model.seed);
  pipeline->model_ = std::make_unique<Seq2SeqModel>(vocab.size(),
                                                    config.model, &rng);

  // Skip-gram cell vectors initialize the token embedding table (Eq. 7).
  // Skipped when resuming: the snapshot restores every named parameter,
  // including the (frozen) embedding table, so this work would be discarded.
  if (!resume_snap.has_value()) {
    E2DTC_TRACE_SPAN("fit.skipgram");
    std::vector<std::vector<int>> corpus;
    corpus.reserve(dataset.trajectories.size());
    for (const auto& t : dataset.trajectories) {
      corpus.push_back(
          vocab.Encode(t, config.model.collapse_consecutive));
    }
    embedding::SkipGramConfig sg;
    sg.dim = config.model.embedding_dim;
    sg.seed = config.model.seed;
    sg.epochs = config.model.skipgram_epochs;
    sg.window = config.model.skipgram_window;
    sg.negatives = config.model.skipgram_negatives;
    E2DTC_ASSIGN_OR_RETURN(nn::Tensor table,
                           embedding::TrainSkipGram(corpus, vocab.size(),
                                                    sg));
    // Spatial diffusion of the cell vectors (Eq. 7's locality property,
    // made explicit; see ModelConfig::cell_embedding_smooth_rounds).
    if (config.model.cell_embedding_smooth_rounds > 0) {
      const geo::Vocabulary::KnnTable smooth_knn =
          vocab.BuildKnnTable(config.model.knn_k, config.model.cell_meters);
      for (int round = 0;
           round < config.model.cell_embedding_smooth_rounds; ++round) {
        nn::Tensor next(table.rows(), table.cols());
        for (int tok = 0; tok < vocab.size(); ++tok) {
          float* out = next.row(tok);
          for (int c = 0; c < smooth_knn.k; ++c) {
            const int nb = smooth_knn.indices[static_cast<size_t>(tok) *
                                                  smooth_knn.k + c];
            const float wgt = smooth_knn.weights[static_cast<size_t>(tok) *
                                                     smooth_knn.k + c];
            if (wgt == 0.0f) continue;
            const float* src = table.row(nb);
            for (int d = 0; d < table.cols(); ++d) out[d] += wgt * src[d];
          }
        }
        table = std::move(next);
      }
    }
    pipeline->model_->embedding().LoadTable(table);
  }
  fit.embed_seconds = phase_watch.ElapsedSeconds();

  // ---- Phase 2: pre-training. ----
  phase_span.emplace("fit.pretrain");
  phase_watch.Restart();
  nn::Tensor centroids;
  if (resume_self_train) {
    // A self-training snapshot is self-contained: it carries the pretrain
    // history and the k-means initialization, so phase 2 and the cluster
    // init below replay from the snapshot instead of recomputing (and the
    // restored RNG state keeps the resumed run bitwise-identical).
    fit.pretrain_history = PretrainHistoryFromRows(resume_snap->pretrain_stats);
    fit.pretrain_seconds = phase_watch.ElapsedSeconds();
    phase_span.emplace("fit.cluster_init");
    TrainStatus::Global().EnterPhase(FitPhase::kClusterInit,
                                     /*total_epochs=*/0);
    phase_watch.Restart();
    fit.l0_embeddings = resume_snap->l0_embeddings;
    fit.l0_assignments.assign(resume_snap->l0_assignments.begin(),
                              resume_snap->l0_assignments.end());
    k = resume_snap->k;
    fit.k = k;
    centroids = resume_snap->centroids;
  } else {
    PretrainConfig pt_cfg = config.pretrain;
    pt_cfg.checkpointer = &checkpointer;
    pt_cfg.cancel = config.cancel;
    pt_cfg.resume = resume_snap.has_value() ? &*resume_snap : nullptr;
    Pretrainer pretrainer(pipeline->model_.get(), &vocab, &*pipeline->knn_,
                          pt_cfg);
    E2DTC_ASSIGN_OR_RETURN(PretrainResult pretrain,
                           pretrainer.Train(dataset.trajectories));
    fit.pretrain_history = std::move(pretrain.history);
    fit.health_skipped_batches += pretrain.skipped_batches;
    fit.health_rollbacks += pretrain.rollbacks;
    fit.pretrain_seconds = phase_watch.ElapsedSeconds();

    // ---- k-means initialization on the pre-trained embeddings. This is
    // both Algorithm 1's centroid init and the t2vec + k-means baseline
    // (L0). ----
    phase_span.emplace("fit.cluster_init");
    TrainStatus::Global().EnterPhase(FitPhase::kClusterInit,
                                     /*total_epochs=*/0);
    phase_watch.Restart();
    fit.l0_embeddings = EncodeAll(*pipeline->model_, vocab,
                                  dataset.trajectories,
                                  config.pretrain.batch_size,
                                  config.model.collapse_consecutive,
                                  pipeline->encode_pool_.get());
    if (auto_k) {
      cluster::KMeansOptions elbow_km;
      elbow_km.seed = config.self_train.seed;
      const int k_max =
          std::min(22, static_cast<int>(dataset.trajectories.size()) / 4);
      E2DTC_ASSIGN_OR_RETURN(
          cluster::ElbowResult elbow,
          cluster::ElbowScan(TensorRows(fit.l0_embeddings), 2,
                             std::max(3, k_max), elbow_km));
      k = elbow.best_k;
      fit.k = k;
      E2DTC_LOG(Debug) << "auto-selected k = " << k << " via elbow";
    }
    cluster::KMeansOptions km;
    km.k = k;
    km.seed = config.self_train.seed;
    // k-means on the embeddings is milliseconds; buy init robustness (a bad
    // centroid draw here is the dominant run-to-run variance source).
    km.num_init = 10;
    E2DTC_ASSIGN_OR_RETURN(
        cluster::KMeansResult km_result,
        cluster::KMeans(TensorRows(fit.l0_embeddings), km));
    fit.l0_assignments = km_result.assignments;

    centroids = nn::Tensor(k, pipeline->model_->hidden_size());
    for (int j = 0; j < k; ++j) {
      std::copy(km_result.centroids[static_cast<size_t>(j)].begin(),
                km_result.centroids[static_cast<size_t>(j)].end(),
                centroids.row(j));
    }
  }

  // ---- Phase 3: self-training (skipped in the L0 ablation). ----
  phase_span.emplace("fit.self_train");
  if (config.self_train.loss_mode == LossMode::kL0) {
    fit.assignments = fit.l0_assignments;
    fit.embeddings = fit.l0_embeddings;
    fit.centroids = std::move(centroids);
  } else {
    SelfTrainConfig st_cfg = config.self_train;
    st_cfg.checkpointer = &checkpointer;
    st_cfg.cancel = config.cancel;
    st_cfg.resume = resume_self_train ? &*resume_snap : nullptr;
    // Pipeline context folded into phase-3 snapshots so a kSelfTrain
    // checkpoint is self-contained (see the resume path above).
    const std::vector<std::vector<double>> pretrain_rows =
        PretrainRows(fit.pretrain_history);
    st_cfg.ckpt_l0_embeddings = &fit.l0_embeddings;
    st_cfg.ckpt_l0_assignments = &fit.l0_assignments;
    st_cfg.ckpt_pretrain_stats = &pretrain_rows;
    SelfTrainer self_trainer(pipeline->model_.get(), &vocab,
                             &*pipeline->knn_, st_cfg,
                             pipeline->encode_pool_.get());
    E2DTC_ASSIGN_OR_RETURN(
        SelfTrainer::TrainResult st,
        self_trainer.Train(dataset.trajectories, centroids));
    fit.assignments = std::move(st.assignments);
    fit.embeddings = std::move(st.embeddings);
    fit.centroids = std::move(st.centroids);
    fit.self_train_history = std::move(st.history);
    fit.self_train_converged = st.converged;
    fit.health_skipped_batches += st.skipped_batches;
    fit.health_rollbacks += st.rollbacks;
  }
  phase_span.reset();
  TrainStatus::Global().EnterPhase(FitPhase::kDone, /*total_epochs=*/0);
  // EnterPhase zeroes the per-phase tallies; restore the fit-wide totals so
  // a post-run scrape still sees them.
  TrainStatus::Global().SetHealth(fit.health_skipped_batches,
                                  fit.health_rollbacks);
  fit.cluster_seconds = phase_watch.ElapsedSeconds();
  fit.total_seconds = total_watch.ElapsedSeconds();
  E2DTC_LOG(Debug) << "fit done in " << fit.total_seconds << "s (embed "
                   << fit.embed_seconds << ", pretrain "
                   << fit.pretrain_seconds << ", cluster "
                   << fit.cluster_seconds << ")";
  return pipeline;
}

nn::Tensor E2dtcPipeline::Embed(
    const std::vector<geo::Trajectory>& trajectories) const {
  return EncodeAll(*model_, *vocab_, trajectories,
                   config_.pretrain.batch_size,
                   config_.model.collapse_consecutive,
                   encode_pool_.get());
}

nn::Tensor E2dtcPipeline::SoftAssign(
    const std::vector<geo::Trajectory>& trajectories) const {
  return nn::StudentTAssignmentValue(Embed(trajectories),
                                     fit_result_.centroids);
}

std::vector<int> E2dtcPipeline::Assign(
    const std::vector<geo::Trajectory>& trajectories) const {
  return HardAssignments(SoftAssign(trajectories));
}

}  // namespace e2dtc::core
