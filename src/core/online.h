#ifndef E2DTC_CORE_ONLINE_H_
#define E2DTC_CORE_ONLINE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/e2dtc.h"

namespace e2dtc::core {

/// Online cluster server over a trained pipeline (the paper's future-work
/// direction "speed up the deep clustering process"): the encoder is frozen
/// and each arriving trajectory costs one forward pass plus a soft
/// assignment, while the centroids adapt to distribution drift with
/// mini-batch k-means updates (Sculley 2010: per-centroid learning rate
/// 1/count, so early samples move centroids boldly and the estimate
/// stabilizes as evidence accumulates).
///
/// Thread-safe: centroid reads and updates are serialized on an internal
/// mutex, so the serve batcher can drive Assign/AssignAndAdapt from
/// concurrent handler threads. The forward pass itself runs outside the
/// lock (the encoder is frozen and const), so only the cheap centroid
/// arithmetic is serialized.
class OnlineClusterer {
 public:
  /// Borrows the pipeline (must outlive this object); starts from its
  /// trained centroids. `count_prior` acts as pseudo-observations already
  /// seen per centroid — larger values make adaptation more conservative.
  explicit OnlineClusterer(const E2dtcPipeline* pipeline,
                           double count_prior = 32.0);

  /// Assigns a batch and adapts the centroids toward the new embeddings.
  std::vector<int> AssignAndAdapt(
      const std::vector<geo::Trajectory>& batch);

  /// Assignment only (no adaptation).
  std::vector<int> Assign(const std::vector<geo::Trajectory>& batch) const;

  /// Convenience single-trajectory call.
  int AssignOne(const geo::Trajectory& trajectory) const;

  /// Assigns already-embedded rows ([B,H]) and adapts centroids. The serve
  /// batcher uses these so one coalesced forward pass serves a whole batch
  /// of requests without embedding twice.
  std::vector<int> AssignAndAdaptEmbedded(const nn::Tensor& embeddings);

  /// Assignment only, from embeddings.
  std::vector<int> AssignEmbedded(const nn::Tensor& embeddings) const;

  /// Snapshot of the current centroids (copy, taken under the lock).
  nn::Tensor centroids() const;
  int64_t num_seen() const;
  int k() const { return k_; }

 private:
  const E2dtcPipeline* pipeline_;
  const int k_;
  mutable std::mutex mu_;
  nn::Tensor centroids_;        ///< Guarded by mu_.
  std::vector<double> counts_;  ///< Pseudo-count per centroid; guarded by mu_.
  int64_t num_seen_ = 0;        ///< Guarded by mu_.
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_ONLINE_H_
