#ifndef E2DTC_CORE_ONLINE_H_
#define E2DTC_CORE_ONLINE_H_

#include <cstdint>
#include <vector>

#include "core/e2dtc.h"

namespace e2dtc::core {

/// Online cluster server over a trained pipeline (the paper's future-work
/// direction "speed up the deep clustering process"): the encoder is frozen
/// and each arriving trajectory costs one forward pass plus a soft
/// assignment, while the centroids adapt to distribution drift with
/// mini-batch k-means updates (Sculley 2010: per-centroid learning rate
/// 1/count, so early samples move centroids boldly and the estimate
/// stabilizes as evidence accumulates).
class OnlineClusterer {
 public:
  /// Borrows the pipeline (must outlive this object); starts from its
  /// trained centroids. `count_prior` acts as pseudo-observations already
  /// seen per centroid — larger values make adaptation more conservative.
  explicit OnlineClusterer(const E2dtcPipeline* pipeline,
                           double count_prior = 32.0);

  /// Assigns a batch and adapts the centroids toward the new embeddings.
  std::vector<int> AssignAndAdapt(
      const std::vector<geo::Trajectory>& batch);

  /// Assignment only (no adaptation).
  std::vector<int> Assign(const std::vector<geo::Trajectory>& batch) const;

  /// Convenience single-trajectory call.
  int AssignOne(const geo::Trajectory& trajectory) const;

  const nn::Tensor& centroids() const { return centroids_; }
  int64_t num_seen() const { return num_seen_; }
  int k() const { return centroids_.rows(); }

 private:
  const E2dtcPipeline* pipeline_;
  nn::Tensor centroids_;
  std::vector<double> counts_;  ///< Pseudo-count per centroid.
  int64_t num_seen_ = 0;
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_ONLINE_H_
