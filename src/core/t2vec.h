#ifndef E2DTC_CORE_T2VEC_H_
#define E2DTC_CORE_T2VEC_H_

#include <memory>

#include "core/e2dtc.h"

namespace e2dtc::core {

/// The paper's neural baseline: t2vec (Li et al., ICDE'18) representation
/// learning followed by k-means — a two-stage pipeline whose embeddings are
/// never tuned for clustering. Implemented as the E2DTC pipeline stopped
/// after pre-training (exactly the paper's L0 ablation configuration).
struct T2vecResult {
  std::vector<int> assignments;
  nn::Tensor embeddings;
  double total_seconds = 0.0;
  std::unique_ptr<E2dtcPipeline> pipeline;  ///< For further embedding calls.
};

/// Fits t2vec + k-means. Uses config.model / config.pretrain;
/// config.self_train.loss_mode is forced to kL0.
Result<T2vecResult> FitT2vecKMeans(const data::Dataset& dataset,
                                   E2dtcConfig config);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_T2VEC_H_
