#ifndef E2DTC_CORE_RUN_REPORT_H_
#define E2DTC_CORE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "core/e2dtc.h"
#include "obs/json.h"
#include "util/status.h"

namespace e2dtc::core {

/// JSON views of the pipeline's structures, used by the JSONL run report and
/// reusable by any other sink (dashboards, bench harnesses).
obs::Json ConfigJson(const E2dtcConfig& config);
obs::Json PretrainEpochJson(const PretrainEpochStats& stats);
obs::Json SelfTrainEpochJson(const SelfTrainEpochStats& stats);
obs::Json PhaseTimingsJson(const FitResult& fit);
obs::Json FitResultJson(const FitResult& fit);

/// Serializes one full fit as a JSONL run report: a "config" line, one
/// "pretrain_epoch" line per phase-2 epoch, one "self_train_epoch" line per
/// phase-3 epoch, a "phase_timings" line, a "result" line, then any
/// `extra_events` verbatim (callers append evaluation scores, captured log
/// lines, ...). Every line carries a "type" member.
Status WriteRunReport(const std::string& path, const E2dtcConfig& config,
                      const FitResult& fit,
                      const std::vector<obs::Json>& extra_events = {});

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_RUN_REPORT_H_
