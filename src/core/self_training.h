#ifndef E2DTC_CORE_SELF_TRAINING_H_
#define E2DTC_CORE_SELF_TRAINING_H_

#include <vector>

#include "core/instruments.h"
#include "core/seq2seq.h"
#include "nn/losses.h"
#include "util/result.h"

namespace e2dtc {
class ThreadPool;
}

namespace e2dtc::core {

/// Phase-3 self-training (paper Section V-D, Algorithm 1): jointly refines
/// the encoder parameters theta and the cluster centroids C by minimizing
///   L = L_r + beta * L_c (+ gamma * L_t)          (Eqs. 12 / 14)
/// where L_c is the KL divergence between the Student-t soft assignment Q
/// and the sharpened target P, and L_t the triplet loss over (anchor,
/// corrupted positive, in-batch negative).
class SelfTrainer {
 public:
  /// See SelfTrainEpochStats in core/config.h (shared with the live
  /// SelfTrainConfig::epoch_callback hook).
  using EpochStats = SelfTrainEpochStats;

  struct TrainResult {
    std::vector<int> assignments;  ///< Final hard assignments.
    nn::Tensor centroids;          ///< [k, H] refined centroids.
    nn::Tensor embeddings;         ///< [N, H] final embeddings.
    std::vector<EpochStats> history;
    bool converged = false;  ///< Stopped via the delta criterion.
    int skipped_batches = 0;  ///< Updates dropped by the health guardrails.
    int rollbacks = 0;        ///< Restores to the last good epoch boundary.
    bool resumed = false;     ///< Continued from a checkpoint snapshot.
  };

  /// All pointers are borrowed and must outlive the trainer.
  /// `encode_pool` (optional) parallelizes the per-epoch corpus re-encoding.
  SelfTrainer(Seq2SeqModel* model, const geo::Vocabulary* vocab,
              const geo::Vocabulary::KnnTable* knn,
              const SelfTrainConfig& config,
              ThreadPool* encode_pool = nullptr);

  /// Runs Algorithm 1 lines 3-10 from the given k-means centroids.
  /// `initial_centroids` is [k, H]. Respects the fault-tolerance hooks on
  /// SelfTrainConfig: resumes from config.resume when its phase matches
  /// (replacing the centroids with the snapshot's), checkpoints via
  /// config.checkpointer at epoch boundaries, and returns Status::Cancelled
  /// when config.cancel flips (after writing a final checkpoint). Returns
  /// Internal when the health guardrails exhausted their rollback budget.
  Result<TrainResult> Train(const std::vector<geo::Trajectory>& trajectories,
                            const nn::Tensor& initial_centroids);

 private:
  Seq2SeqModel* model_;
  const geo::Vocabulary* vocab_;
  const geo::Vocabulary::KnnTable* knn_;
  SelfTrainConfig config_;
  ThreadPool* encode_pool_;
  SelfTrainInstruments instr_;
};

/// Hard assignment: argmax_j q_ij of a soft-assignment matrix.
std::vector<int> HardAssignments(const nn::Tensor& q);

/// Fraction of entries that differ between two assignment vectors.
double ChangedFraction(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_SELF_TRAINING_H_
