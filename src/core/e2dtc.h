#ifndef E2DTC_CORE_E2DTC_H_
#define E2DTC_CORE_E2DTC_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pretrain.h"
#include "core/self_training.h"
#include "util/thread_pool.h"
#include "core/seq2seq.h"
#include "data/dataset.h"
#include "util/result.h"

namespace e2dtc::core {

/// Everything produced by one end-to-end fit.
struct FitResult {
  int k = 0;
  /// Final hard cluster assignments (phase 3; equals l0_assignments when
  /// loss_mode == kL0).
  std::vector<int> assignments;
  /// Final trajectory embeddings [N, H].
  nn::Tensor embeddings;
  /// Final cluster centroids [k, H].
  nn::Tensor centroids;
  /// Phase-2-only baseline: k-means on the pre-trained embeddings. This IS
  /// the paper's "t2vec + k-means" comparison point (and the L0 ablation).
  std::vector<int> l0_assignments;
  nn::Tensor l0_embeddings;

  std::vector<Pretrainer::EpochStats> pretrain_history;
  std::vector<SelfTrainer::EpochStats> self_train_history;
  bool self_train_converged = false;

  /// Fault-tolerance bookkeeping: whether this fit continued from a
  /// checkpoint, and totals from the numerical-health guardrails across
  /// both training phases.
  bool resumed = false;
  int health_skipped_batches = 0;
  int health_rollbacks = 0;

  double embed_seconds = 0.0;     ///< Phase 1: grid/vocab/skip-gram.
  double pretrain_seconds = 0.0;  ///< Phase 2.
  double cluster_seconds = 0.0;   ///< k-means init + phase 3.
  double total_seconds = 0.0;
};

/// The end-to-end deep trajectory clustering pipeline (paper Fig. 2):
/// (1) trajectory embedding — grid discretization + skip-gram cell vectors;
/// (2) pre-training — seq2seq reconstruction under Eq. 8;
/// (3) self-training — joint DEC refinement with Eqs. 9-14.
///
/// Typical use:
///   auto pipeline = E2dtcPipeline::Fit(dataset, config);
///   const std::vector<int>& clusters = pipeline->fit_result().assignments;
class E2dtcPipeline {
 public:
  /// Fits the full pipeline on a labeled or unlabeled dataset. The cluster
  /// count comes from config.self_train.k, falling back to
  /// dataset.num_clusters; if both are 0, k is selected automatically from
  /// the elbow of the k-means inertia curve over the pre-trained embeddings
  /// (the paper's Fig. 6(a) procedure). Errors on empty data or invalid
  /// configuration.
  static Result<std::unique_ptr<E2dtcPipeline>> Fit(
      const data::Dataset& dataset, const E2dtcConfig& config);

  /// Embeds new trajectories with the trained encoder.
  nn::Tensor Embed(const std::vector<geo::Trajectory>& trajectories) const;

  /// Assigns new trajectories to the learned clusters (argmax of the
  /// Student-t soft assignment against the trained centroids).
  std::vector<int> Assign(
      const std::vector<geo::Trajectory>& trajectories) const;

  /// Soft assignment matrix Q for new trajectories.
  nn::Tensor SoftAssign(
      const std::vector<geo::Trajectory>& trajectories) const;

  const FitResult& fit_result() const { return fit_result_; }
  const geo::Vocabulary& vocab() const { return *vocab_; }
  const Seq2SeqModel& model() const { return *model_; }
  Seq2SeqModel& mutable_model() { return *model_; }
  const E2dtcConfig& config() const { return config_; }

  /// Serialization (core/model_io.cc). Save writes vocab + parameters +
  /// centroids; Load reconstructs a pipeline ready for Embed/Assign (the
  /// fit_result history is not persisted).
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<E2dtcPipeline>> Load(const std::string& path);

 private:
  friend Result<std::unique_ptr<E2dtcPipeline>> LoadPipeline(
      const std::string& path);

  E2dtcPipeline() = default;

  E2dtcConfig config_;
  std::unique_ptr<ThreadPool> encode_pool_;  ///< Non-null when threaded.
  std::optional<geo::Vocabulary> vocab_;
  std::optional<geo::Vocabulary::KnnTable> knn_;
  std::unique_ptr<Seq2SeqModel> model_;
  FitResult fit_result_;
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_E2DTC_H_
