#include "core/train_telemetry.h"

#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "obs/telemetry.h"

namespace e2dtc::core {

void InstallGradTelemetry(nn::Optimizer* optimizer, const Seq2SeqModel& model,
                          const std::string& phase) {
  // Resolve each optimizer parameter to a module group once, at install
  // time: hierarchical names come from the model's parameter tree, extra
  // leaves (centroids) fall back to their node name.
  std::map<const nn::Node*, std::string> group_by_node;
  for (const nn::NamedParameter& np : model.NamedParameters()) {
    group_by_node[np.var.node().get()] =
        np.name.substr(0, np.name.find('.'));
  }
  const std::vector<nn::Var>& params = optimizer->params();
  std::vector<std::string> group_names;
  std::vector<size_t> param_group(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    std::string group;
    auto it = group_by_node.find(params[i].node().get());
    if (it != group_by_node.end()) {
      group = it->second;
    } else if (!params[i].node()->name.empty()) {
      group = params[i].node()->name;
    } else {
      group = "param" + std::to_string(i);
    }
    size_t g = 0;
    while (g < group_names.size() && group_names[g] != group) ++g;
    if (g == group_names.size()) group_names.push_back(group);
    param_group[i] = g;
  }

  obs::TimeSeriesRecorder& recorder = obs::TimeSeriesRecorder::Global();
  struct GroupSeries {
    obs::Series grad;
    obs::Series ratio;
  };
  std::vector<GroupSeries> series;
  series.reserve(group_names.size());
  for (const std::string& g : group_names) {
    series.push_back({recorder.series(phase + ".grad_norm." + g),
                      recorder.series(phase + ".update_ratio." + g)});
  }
  obs::Series total = recorder.series(phase + ".grad_norm.total");

  optimizer->SetStepObserver(
      [series = std::move(series), total, param_group = std::move(param_group)](
          int64_t step, const std::vector<nn::Var>& step_params,
          float lr) mutable {
        if (!obs::TelemetryEnabled()) return;
        const size_t n_groups = series.size();
        std::vector<double> grad_sq(n_groups, 0.0);
        std::vector<double> weight_sq(n_groups, 0.0);
        double total_sq = 0.0;
        for (size_t i = 0; i < step_params.size(); ++i) {
          const nn::Tensor& g = step_params[i].grad();
          if (!g.SameShape(step_params[i].value())) continue;  // no grad
          const double sq = static_cast<double>(g.SquaredNorm());
          grad_sq[param_group[i]] += sq;
          weight_sq[param_group[i]] +=
              static_cast<double>(step_params[i].value().SquaredNorm());
          total_sq += sq;
        }
        total.Record(step, std::sqrt(total_sq));
        for (size_t g = 0; g < n_groups; ++g) {
          const double norm = std::sqrt(grad_sq[g]);
          series[g].grad.Record(step, norm);
          series[g].ratio.Record(
              step, lr * norm / (std::sqrt(weight_sq[g]) + 1e-12));
        }
      });
}

}  // namespace e2dtc::core
