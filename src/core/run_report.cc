#include "core/run_report.h"

#include "obs/run_report.h"

namespace e2dtc::core {

namespace {

const char* LossModeName(LossMode mode) {
  switch (mode) {
    case LossMode::kL0:
      return "L0";
    case LossMode::kL1:
      return "L1";
    case LossMode::kL2:
      return "L2";
  }
  return "?";
}

const char* OptimizerName(OptimizerKind kind) {
  return kind == OptimizerKind::kAdam ? "adam" : "sgd";
}

}  // namespace

obs::Json ConfigJson(const E2dtcConfig& config) {
  obs::Json model = obs::Json::Object();
  model.Set("rnn", config.model.rnn == RnnKind::kLstm ? "lstm" : "gru");
  model.Set("bidirectional_encoder", config.model.bidirectional_encoder);
  model.Set("cell_meters", config.model.cell_meters);
  model.Set("vocab_min_count", config.model.vocab_min_count);
  model.Set("collapse_consecutive", config.model.collapse_consecutive);
  model.Set("embedding_dim", config.model.embedding_dim);
  model.Set("hidden_size", config.model.hidden_size);
  model.Set("num_layers", config.model.num_layers);
  model.Set("dropout", static_cast<double>(config.model.dropout));
  model.Set("knn_k", config.model.knn_k);
  model.Set("mean_pool_embedding", config.model.mean_pool_embedding);
  model.Set("freeze_embedding_table", config.model.freeze_embedding_table);
  model.Set("skipgram_epochs", config.model.skipgram_epochs);
  model.Set("skipgram_window", config.model.skipgram_window);
  model.Set("skipgram_negatives", config.model.skipgram_negatives);
  model.Set("cell_embedding_smooth_rounds",
            config.model.cell_embedding_smooth_rounds);
  model.Set("knn_alpha_meters", config.model.knn_alpha_meters);
  model.Set("seed", config.model.seed);

  obs::Json pretrain = obs::Json::Object();
  pretrain.Set("epochs", config.pretrain.epochs);
  pretrain.Set("batch_size", config.pretrain.batch_size);
  pretrain.Set("optimizer", OptimizerName(config.pretrain.optimizer));
  pretrain.Set("lr", static_cast<double>(config.pretrain.lr));
  pretrain.Set("momentum", static_cast<double>(config.pretrain.momentum));
  pretrain.Set("grad_clip", static_cast<double>(config.pretrain.grad_clip));
  pretrain.Set("variants_per_trajectory",
               config.pretrain.variants_per_trajectory);
  pretrain.Set("seed", config.pretrain.seed);

  obs::Json self_train = obs::Json::Object();
  self_train.Set("k", config.self_train.k);
  self_train.Set("max_iters", config.self_train.max_iters);
  self_train.Set("beta", static_cast<double>(config.self_train.beta));
  self_train.Set("gamma", static_cast<double>(config.self_train.gamma));
  self_train.Set("triplet_margin",
                 static_cast<double>(config.self_train.triplet_margin));
  self_train.Set("delta", config.self_train.delta);
  self_train.Set("batch_size", config.self_train.batch_size);
  self_train.Set("optimizer", OptimizerName(config.self_train.optimizer));
  self_train.Set("lr", static_cast<double>(config.self_train.lr));
  self_train.Set("momentum",
                 static_cast<double>(config.self_train.momentum));
  self_train.Set("grad_clip",
                 static_cast<double>(config.self_train.grad_clip));
  self_train.Set("loss_mode", LossModeName(config.self_train.loss_mode));
  self_train.Set("seed", config.self_train.seed);

  obs::Json out = obs::Json::Object();
  out.Set("type", "config");
  out.Set("model", std::move(model));
  out.Set("pretrain", std::move(pretrain));
  out.Set("self_train", std::move(self_train));
  out.Set("num_encode_threads", config.num_encode_threads);
  return out;
}

obs::Json PretrainEpochJson(const PretrainEpochStats& stats) {
  obs::Json out = obs::Json::Object();
  out.Set("type", "pretrain_epoch");
  out.Set("epoch", stats.epoch);
  out.Set("avg_token_loss", stats.avg_token_loss);
  out.Set("grad_norm", stats.grad_norm);
  out.Set("tokens_per_second", stats.tokens_per_second);
  out.Set("seconds", stats.seconds);
  out.Set("skipped_batches", stats.skipped_batches);
  return out;
}

obs::Json SelfTrainEpochJson(const SelfTrainEpochStats& stats) {
  obs::Json out = obs::Json::Object();
  out.Set("type", "self_train_epoch");
  out.Set("epoch", stats.epoch);
  out.Set("recon_loss", stats.recon_loss);
  out.Set("cluster_loss", stats.cluster_loss);
  out.Set("triplet_loss", stats.triplet_loss);
  out.Set("grad_norm", stats.grad_norm);
  out.Set("changed_fraction", stats.changed_fraction);
  out.Set("seconds", stats.seconds);
  out.Set("skipped_batches", stats.skipped_batches);
  return out;
}

obs::Json PhaseTimingsJson(const FitResult& fit) {
  obs::Json out = obs::Json::Object();
  out.Set("type", "phase_timings");
  out.Set("embed_seconds", fit.embed_seconds);
  out.Set("pretrain_seconds", fit.pretrain_seconds);
  out.Set("cluster_seconds", fit.cluster_seconds);
  out.Set("total_seconds", fit.total_seconds);
  return out;
}

obs::Json FitResultJson(const FitResult& fit) {
  obs::Json out = obs::Json::Object();
  out.Set("type", "result");
  out.Set("k", fit.k);
  out.Set("num_trajectories", static_cast<int64_t>(fit.assignments.size()));
  out.Set("self_train_converged", fit.self_train_converged);
  out.Set("pretrain_epochs", static_cast<int64_t>(fit.pretrain_history.size()));
  out.Set("self_train_epochs",
          static_cast<int64_t>(fit.self_train_history.size()));
  out.Set("resumed", fit.resumed);
  out.Set("health_skipped_batches", fit.health_skipped_batches);
  out.Set("health_rollbacks", fit.health_rollbacks);
  // Cluster occupancy: how many trajectories landed in each final cluster.
  std::vector<int64_t> sizes(static_cast<size_t>(fit.k > 0 ? fit.k : 0), 0);
  for (int a : fit.assignments) {
    if (a >= 0 && a < static_cast<int>(sizes.size())) {
      ++sizes[static_cast<size_t>(a)];
    }
  }
  obs::Json sizes_json = obs::Json::Array();
  for (int64_t s : sizes) sizes_json.Append(s);
  out.Set("cluster_sizes", std::move(sizes_json));
  return out;
}

Status WriteRunReport(const std::string& path, const E2dtcConfig& config,
                      const FitResult& fit,
                      const std::vector<obs::Json>& extra_events) {
  obs::RunReportWriter writer(path);
  if (!writer.ok()) {
    return Status::IOError("cannot open run report file: " + path);
  }
  writer.Write(ConfigJson(config));
  for (const auto& stats : fit.pretrain_history) {
    writer.Write(PretrainEpochJson(stats));
  }
  for (const auto& stats : fit.self_train_history) {
    writer.Write(SelfTrainEpochJson(stats));
  }
  writer.Write(PhaseTimingsJson(fit));
  writer.Write(FitResultJson(fit));
  for (const auto& event : extra_events) writer.Write(event);
  if (!writer.Close()) {
    return Status::IOError("failed writing run report: " + path);
  }
  return Status::OK();
}

}  // namespace e2dtc::core
