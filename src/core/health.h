#ifndef E2DTC_CORE_HEALTH_H_
#define E2DTC_CORE_HEALTH_H_

#include <deque>

namespace e2dtc::core {

/// Numerical-health guardrails for the training loops. A long Algorithm 1
/// run must survive a NaN blow-up or a diverging step without aborting the
/// process, so the trainers consult a HealthMonitor after each backward pass
/// and before applying the optimizer step.
struct HealthConfig {
  bool enabled = true;
  /// A batch diverges when its loss exceeds this multiple of the trailing
  /// median batch loss. Generous on purpose: losses are noisy early on, and
  /// a false positive discards useful gradient signal.
  double divergence_factor = 25.0;
  /// Trailing healthy-loss window the median is computed over.
  int median_window = 32;
  /// Divergence checks only start once this many healthy batches are in the
  /// window (the median of 2 losses means nothing).
  int min_history = 8;
  /// After this many consecutive poisoned batches, skipping is clearly not
  /// working (the parameters themselves are likely poisoned): escalate to a
  /// rollback.
  int max_consecutive_skips = 4;
  /// Learning-rate multiplier applied on rollback, so the retry does not
  /// drive straight back into the same blow-up.
  float rollback_lr_scale = 0.5f;
  /// Rollbacks allowed per phase before the trainer gives up and surfaces
  /// an Internal error (a model this unstable needs a human).
  int max_rollbacks = 2;
};

/// Per-phase guardrail state machine. Feed it every batch's loss and
/// pre-clip gradient norm; it answers what to do with the step.
class HealthMonitor {
 public:
  enum class Verdict {
    kOk,         ///< Healthy: apply the optimizer step.
    kSkipBatch,  ///< Poisoned: drop this batch's update, keep going.
    kRollback,   ///< Persistent poison: restore the last good checkpoint.
  };

  explicit HealthMonitor(const HealthConfig& config) : config_(config) {}

  /// Classifies one batch. Call after Backward + ClipGradNorm, before
  /// Step(); on kSkipBatch/kRollback the caller must not Step().
  Verdict Check(double loss, double grad_norm);

  /// Tell the monitor a rollback actually happened: resets the skip streak
  /// and the loss window (pre-rollback losses no longer describe the
  /// restored parameters).
  void OnRollback();

  int skipped_batches() const { return skipped_batches_; }
  int rollbacks() const { return rollbacks_; }
  const HealthConfig& config() const { return config_; }

 private:
  HealthConfig config_;
  std::deque<double> window_;
  int consecutive_skips_ = 0;
  int skipped_batches_ = 0;
  int rollbacks_ = 0;
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_HEALTH_H_
