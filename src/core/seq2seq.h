#ifndef E2DTC_CORE_SEQ2SEQ_H_
#define E2DTC_CORE_SEQ2SEQ_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "data/batching.h"
#include "geo/vocab.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/losses.h"
#include "nn/module.h"

namespace e2dtc::core {

/// Opaque per-layer recurrent state: one Var (h) per layer for GRU, two
/// (h, c) per layer for LSTM. The first entry of each layer is always the
/// hidden state.
struct RnnState {
  std::vector<std::vector<nn::Var>> layers;

  /// Hidden state of the top layer — the sequence output at this step.
  const nn::Var& TopH() const { return layers.back().front(); }
};

/// The encoder-decoder at the heart of E2DTC (paper Fig. 2, blocks 2-4):
/// a shared token embedding, a stacked-RNN encoder producing the trajectory
/// representation v_T, a stacked-RNN decoder reconstructing the target
/// token sequence, and a vocabulary projection scored with the
/// KNN-restricted spatial proximity loss (Eq. 8). The cell family is
/// selected by ModelConfig::rnn (GRU per the paper; LSTM for the ablation).
class Seq2SeqModel : public nn::Module {
 public:
  Seq2SeqModel(int vocab_size, const ModelConfig& config, Rng* rng);

  /// Encoder output: the per-layer final states (decoder init) plus the
  /// [B, H] trajectory representation v_T — the final top hidden by
  /// default, or masked mean pooling over top-layer hiddens (see
  /// ModelConfig::mean_pool_embedding).
  struct EncodeResult {
    RnnState state;
    nn::Var embedding;
  };

  /// Encodes a padded batch. Padded steps neither advance the state nor
  /// contribute to the pooled embedding. With train == true, inter-layer
  /// dropout is applied using `rng`.
  EncodeResult Encode(const data::PaddedBatch& batch, bool train,
                      Rng* rng) const;

  /// Teacher-forced reconstruction loss (Eq. 8) of `target` given the
  /// encoder state: decoder inputs are [BOS, y_1..y_L], targets
  /// [y_1..y_L, EOS]. Returns the summed loss and the number of target
  /// tokens scored (for per-token normalization).
  struct DecodeResult {
    nn::Var loss_sum;
    int num_tokens = 0;
  };
  DecodeResult DecodeLoss(const RnnState& encoder_state,
                          const data::PaddedBatch& target,
                          const geo::Vocabulary::KnnTable& knn, bool train,
                          Rng* rng) const;

  /// Plain-tensor batched encoding for inference (no graph kept by caller).
  /// Returns a [B, H] tensor of trajectory embeddings.
  nn::Tensor EncodeInference(const data::PaddedBatch& batch) const;

  /// Parameters the optimizers should update: all of them, minus the token
  /// embedding table when config().freeze_embedding_table is set.
  std::vector<nn::Var> TrainableParameters() const;

  int vocab_size() const { return vocab_size_; }
  int hidden_size() const { return config_.hidden_size; }
  const ModelConfig& config() const { return config_; }
  nn::Embedding& embedding() { return *embedding_; }

 private:
  /// Which stack a Step() call drives.
  enum class StackRole { kEncoderFw, kEncoderBw, kDecoder };

  RnnState Step(StackRole role, const nn::Var& x, const RnnState& state,
                float dropout, Rng* rng) const;
  RnnState InitialState(int batch_size) const;

  /// One full encoder sweep; with `reversed`, each row is consumed back to
  /// front (the second half of a bidirectional encoder).
  EncodeResult EncodePass(StackRole role, bool reversed,
                          const data::PaddedBatch& batch, bool train,
                          Rng* rng) const;

  int vocab_size_;
  ModelConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;
  // Exactly one family is instantiated, per config_.rnn; the *_bw_
  // stacks exist only when config_.bidirectional_encoder is set.
  std::unique_ptr<nn::GruStack> gru_encoder_;
  std::unique_ptr<nn::GruStack> gru_encoder_bw_;
  std::unique_ptr<nn::GruStack> gru_decoder_;
  std::unique_ptr<nn::LstmStack> lstm_encoder_;
  std::unique_ptr<nn::LstmStack> lstm_encoder_bw_;
  std::unique_ptr<nn::LstmStack> lstm_decoder_;
  nn::Var proj_weight_;  // [V, H]
  nn::Var proj_bias_;    // [V, 1]
};

/// Sorts `indices` by decreasing sequence length (padding-efficiency helper;
/// the model itself masks arbitrary validity patterns).
void SortByLengthDescending(const std::vector<std::vector<int>>& sequences,
                            std::vector<int>* indices);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_SEQ2SEQ_H_
