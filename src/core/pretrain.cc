#include "core/pretrain.h"

#include <algorithm>

#include "core/health.h"
#include "core/instruments.h"
#include "core/resume.h"
#include "core/status.h"
#include "core/train_telemetry.h"
#include "data/batching.h"
#include "nn/kernels.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace e2dtc::core {

namespace {

/// Telemetry series the pretrainer emits, one sample per epoch (step =
/// epoch index). Resolved once per Train() call; recording is a no-op
/// while telemetry is disabled.
struct PretrainTelemetry {
  obs::TimeSeriesRecorder& rec = obs::TimeSeriesRecorder::Global();
  obs::Series loss_recon = rec.series("pretrain.loss.recon");
  obs::Series tokens_per_second = rec.series("pretrain.tokens_per_second");
  obs::Series epoch_seconds = rec.series("pretrain.epoch_seconds");
  obs::Series gemm_macs = rec.series("pretrain.gemm_macs");
  obs::Series gemm_gflops = rec.series("pretrain.gemm_gflops");
  obs::Series gemm_dispatches = rec.series("pretrain.gemm_dispatches");
  obs::Series fused_macs = rec.series("pretrain.fused_macs");
  obs::Series fused_gflops = rec.series("pretrain.fused_gflops");
  obs::Series fused_dispatches = rec.series("pretrain.fused_dispatches");
};

}  // namespace

Pretrainer::Pretrainer(Seq2SeqModel* model, const geo::Vocabulary* vocab,
                       const geo::Vocabulary::KnnTable* knn,
                       const PretrainConfig& config)
    : model_(model), vocab_(vocab), knn_(knn), config_(config) {
  E2DTC_CHECK(model != nullptr && vocab != nullptr && knn != nullptr);
}

Result<PretrainResult> Pretrainer::Train(
    const std::vector<geo::Trajectory>& trajectories) {
  E2DTC_TRACE_SPAN("pretrain.train");
  PretrainTelemetry telemetry;
  const bool collapse = model_->config().collapse_consecutive;
  const int n = static_cast<int>(trajectories.size());
  E2DTC_CHECK_GT(n, 0);

  // Targets are fixed: the original trajectories.
  std::vector<std::vector<int>> targets(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    targets[static_cast<size_t>(i)] =
        vocab_->Encode(trajectories[static_cast<size_t>(i)], collapse);
    E2DTC_CHECK(!targets[static_cast<size_t>(i)].empty());
  }

  Rng rng(config_.seed);
  std::unique_ptr<nn::Optimizer> optimizer = MakeOptimizer(
      model_->TrainableParameters(), config_.optimizer, config_.lr,
      config_.momentum);
  InstallGradTelemetry(optimizer.get(), *model_, "pretrain");
  PretrainResult result;
  HealthMonitor health(config_.health);
  ckpt::Checkpointer* ckptr =
      config_.checkpointer != nullptr && config_.checkpointer->enabled()
          ? config_.checkpointer
          : nullptr;

  const auto& drops = config_.augment.drop_rates;
  const auto& distorts = config_.augment.distort_rates;
  E2DTC_CHECK(!drops.empty() && !distorts.empty());

  int start_epoch = 0;
  if (config_.resume != nullptr &&
      config_.resume->phase == ckpt::TrainPhase::kPretrain) {
    E2DTC_RETURN_IF_ERROR(
        ApplyTrainingState(*config_.resume, model_, optimizer.get(), &rng));
    start_epoch = config_.resume->epochs_done;
    result.history = PretrainHistoryFromRows(config_.resume->pretrain_stats);
    result.resumed = true;
    E2DTC_LOG(Info) << "pretraining resumed at epoch " << start_epoch;
  }
  TrainStatus& status = TrainStatus::Global();
  status.EnterPhase(FitPhase::kPretrain, config_.epochs, start_epoch);

  // State at the last completed epoch boundary: the disk checkpoint source
  // and the in-memory rollback target for the health guardrails. Mid-epoch
  // progress is deliberately never captured — discarding the partial epoch
  // and replaying it from the boundary is what makes a resumed run bitwise
  // identical to an uninterrupted one.
  const bool track_boundary = config_.health.enabled || ckptr != nullptr ||
                              config_.cancel != nullptr;
  ckpt::PhaseSnapshot boundary;
  auto capture_boundary = [&](int epochs_done) {
    boundary.phase = ckpt::TrainPhase::kPretrain;
    boundary.epochs_done = epochs_done;
    CaptureTrainingState(*model_, *optimizer, rng, &boundary);
    boundary.pretrain_stats = PretrainRows(result.history);
  };
  if (track_boundary) capture_boundary(start_epoch);

  auto cancelled = [&] {
    return config_.cancel != nullptr &&
           config_.cancel->load(std::memory_order_relaxed);
  };
  auto cancel_out = [&]() -> Status {
    if (ckptr != nullptr) {
      Status st = ckptr->Save(boundary);
      if (!st.ok()) {
        E2DTC_LOG(Warning) << "final checkpoint failed: " << st.ToString();
      } else {
        status.OnCheckpoint(ckptr->last_saved_path());
      }
    }
    return Status::Cancelled(StrFormat(
        "pretraining cancelled after %d completed epoch(s)",
        boundary.epochs_done));
  };

  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    E2DTC_TRACE_SPAN("pretrain.epoch");
    if (cancelled()) return cancel_out();
    Stopwatch watch;
    const nn::kernels::DispatchStats gemm_start =
        nn::kernels::GetDispatchStats();
    // Each example pairs a freshly corrupted source with its original.
    std::vector<int> example_traj;     // example -> trajectory index
    std::vector<std::vector<int>> sources;
    const int variants = std::max(1, config_.variants_per_trajectory);
    for (int i = 0; i < n; ++i) {
      for (int v = 0; v < variants; ++v) {
        const double r1 = drops[rng.UniformU64(drops.size())];
        const double r2 = distorts[rng.UniformU64(distorts.size())];
        geo::Trajectory corrupted =
            geo::Corrupt(trajectories[static_cast<size_t>(i)], r1, r2,
                         config_.augment.noise_sigma_meters, &rng);
        std::vector<int> src = vocab_->Encode(corrupted, collapse);
        if (src.empty()) src.push_back(geo::Vocabulary::kUnk);
        sources.push_back(std::move(src));
        example_traj.push_back(i);
      }
    }

    std::vector<int> tgt_lengths;
    tgt_lengths.reserve(sources.size());
    for (int ex = 0; ex < static_cast<int>(sources.size()); ++ex) {
      tgt_lengths.push_back(static_cast<int>(
          targets[static_cast<size_t>(example_traj[static_cast<size_t>(ex)])]
              .size()));
    }
    std::vector<std::vector<int>> batches = data::MakeBatchIndices(
        tgt_lengths, config_.batch_size, /*bucket_by_length=*/true, &rng);

    double loss_sum = 0.0;
    int64_t token_sum = 0;
    EpochStats stats;
    stats.epoch = epoch;
    bool rollback_requested = false;
    for (const auto& batch_examples : batches) {
      E2DTC_TRACE_SPAN("pretrain.batch");
      if (cancelled()) return cancel_out();
      Stopwatch batch_watch;
      std::vector<int> tgt_indices;
      tgt_indices.reserve(batch_examples.size());
      for (int ex : batch_examples) {
        tgt_indices.push_back(example_traj[static_cast<size_t>(ex)]);
      }
      data::PaddedBatch src = data::PadSequences(sources, batch_examples,
                                                 geo::Vocabulary::kPad);
      data::PaddedBatch tgt =
          data::PadSequences(targets, tgt_indices, geo::Vocabulary::kPad);

      optimizer->ZeroGrad();
      Seq2SeqModel::EncodeResult enc =
          model_->Encode(src, /*train=*/true, &rng);
      Seq2SeqModel::DecodeResult dec =
          model_->DecodeLoss(enc.state, tgt, *knn_, /*train=*/true, &rng);
      nn::Var loss = nn::MulScalar(
          dec.loss_sum, 1.0f / static_cast<float>(dec.num_tokens));
      nn::Backward(loss);
      stats.grad_norm = optimizer->ClipGradNorm(config_.grad_clip);

      const double batch_loss =
          static_cast<double>(loss.value().scalar());
      const HealthMonitor::Verdict verdict =
          health.Check(batch_loss, stats.grad_norm);
      if (verdict == HealthMonitor::Verdict::kRollback) {
        rollback_requested = true;
        break;
      }
      if (verdict == HealthMonitor::Verdict::kSkipBatch) {
        ++stats.skipped_batches;
        continue;
      }
      optimizer->Step();
      status.OnBatch();

      loss_sum += static_cast<double>(dec.loss_sum.value().scalar());
      token_sum += dec.num_tokens;
      instr_.batches.Increment();
      instr_.tokens.Increment(static_cast<uint64_t>(dec.num_tokens));
      instr_.batch_ms.Record(batch_watch.ElapsedMillis());
    }
    if (rollback_requested) {
      if (health.rollbacks() >= config_.health.max_rollbacks) {
        status.OnGiveUp();
        return Status::Internal(StrFormat(
            "pretraining keeps producing poisoned batches after %d "
            "rollback(s); giving up at epoch %d",
            health.rollbacks(), epoch));
      }
      health.OnRollback();
      status.SetHealth(health.skipped_batches(), health.rollbacks());
      E2DTC_RETURN_IF_ERROR(
          ApplyTrainingState(boundary, model_, optimizer.get(), &rng));
      optimizer->set_lr(optimizer->lr() * config_.health.rollback_lr_scale);
      result.history = PretrainHistoryFromRows(boundary.pretrain_stats);
      E2DTC_LOG(Warning) << "pretraining rolled back to epoch boundary "
                         << boundary.epochs_done << " with lr "
                         << optimizer->lr();
      epoch = boundary.epochs_done - 1;  // the loop's ++ re-enters there
      continue;
    }
    stats.avg_token_loss =
        token_sum > 0 ? loss_sum / static_cast<double>(token_sum) : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    stats.tokens_per_second =
        stats.seconds > 0.0 ? static_cast<double>(token_sum) / stats.seconds
                            : 0.0;
    instr_.tokens_per_second.Set(stats.tokens_per_second);
    telemetry.loss_recon.Record(epoch, stats.avg_token_loss);
    telemetry.tokens_per_second.Record(epoch, stats.tokens_per_second);
    telemetry.epoch_seconds.Record(epoch, stats.seconds);
    {
      const nn::kernels::DispatchStats gemm_end =
          nn::kernels::GetDispatchStats();
      const double macs =
          static_cast<double>(gemm_end.macs - gemm_start.macs);
      telemetry.gemm_macs.Record(epoch, macs);
      telemetry.gemm_dispatches.Record(
          epoch,
          static_cast<double>(gemm_end.dispatches - gemm_start.dispatches));
      telemetry.gemm_gflops.Record(
          epoch, stats.seconds > 0.0 ? 2.0 * macs / stats.seconds / 1e9 : 0.0);
      // Loss-path compute (fused softmax/KNN kernels), historically
      // invisible to the per-phase GEMM accounting.
      const double fmacs =
          static_cast<double>(gemm_end.fused_macs - gemm_start.fused_macs);
      telemetry.fused_macs.Record(epoch, fmacs);
      telemetry.fused_dispatches.Record(
          epoch, static_cast<double>(gemm_end.fused_dispatches -
                                     gemm_start.fused_dispatches));
      telemetry.fused_gflops.Record(
          epoch,
          stats.seconds > 0.0 ? 2.0 * fmacs / stats.seconds / 1e9 : 0.0);
    }
    E2DTC_LOG(Debug) << "pretrain epoch " << epoch << " loss/token "
                     << stats.avg_token_loss << " (" << stats.seconds
                     << "s)";
    result.history.push_back(stats);
    // Pretraining has no KL/triplet terms, so joint == recon.
    status.OnEpochEnd(epoch + 1, stats.avg_token_loss, 0.0, 0.0,
                      stats.avg_token_loss, stats.grad_norm, stats.seconds);
    status.SetHealth(health.skipped_batches(), health.rollbacks());

    if (track_boundary) capture_boundary(epoch + 1);
    if (ckptr != nullptr &&
        ckptr->ShouldSave(epoch + 1, epoch + 1 == config_.epochs)) {
      Status st = ckptr->Save(boundary);
      if (!st.ok()) {
        E2DTC_LOG(Warning) << "checkpoint save failed (training continues): "
                           << st.ToString();
      } else {
        status.OnCheckpoint(ckptr->last_saved_path());
      }
    }
    // After the boundary capture, so state a callback corrupts (tests use
    // this as a fault-injection point) is recoverable by rollback.
    if (config_.epoch_callback) config_.epoch_callback(stats);
  }
  result.skipped_batches = health.skipped_batches();
  result.rollbacks = health.rollbacks();
  return result;
}

nn::Tensor EncodeAll(const Seq2SeqModel& model, const geo::Vocabulary& vocab,
                     const std::vector<geo::Trajectory>& trajectories,
                     int batch_size, bool collapse_consecutive,
                     ThreadPool* pool) {
  E2DTC_TRACE_SPAN("encode_all");
  // Free-function catalog (EncodeAll has no construction point to hoist to).
  struct EncodeInstruments {
    obs::Counter trajectories =
        obs::Registry::Global().counter("encode.trajectories");
  };
  static EncodeInstruments* encode_instr = new EncodeInstruments();
  const int n = static_cast<int>(trajectories.size());
  encode_instr->trajectories.Increment(static_cast<uint64_t>(n));
  std::vector<std::vector<int>> seqs(static_cast<size_t>(n));
  std::vector<int> lengths(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    seqs[static_cast<size_t>(i)] =
        vocab.Encode(trajectories[static_cast<size_t>(i)],
                     collapse_consecutive);
    if (seqs[static_cast<size_t>(i)].empty()) {
      seqs[static_cast<size_t>(i)].push_back(geo::Vocabulary::kUnk);
    }
    lengths[static_cast<size_t>(i)] =
        static_cast<int>(seqs[static_cast<size_t>(i)].size());
  }
  std::vector<std::vector<int>> batches = data::MakeBatchIndices(
      lengths, batch_size, /*bucket_by_length=*/true, /*rng=*/nullptr);

  nn::Tensor out(n, model.hidden_size());
  auto encode_batch = [&](int64_t b) {
    E2DTC_TRACE_SPAN("encode_all.batch");
    const auto& batch_indices = batches[static_cast<size_t>(b)];
    data::PaddedBatch batch =
        data::PadSequences(seqs, batch_indices, geo::Vocabulary::kPad);
    nn::Tensor emb = model.EncodeInference(batch);
    for (size_t r = 0; r < batch_indices.size(); ++r) {
      std::copy(emb.row(static_cast<int>(r)),
                emb.row(static_cast<int>(r)) + emb.cols(),
                out.row(batch_indices[r]));
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(static_cast<int64_t>(batches.size()), encode_batch);
  } else {
    for (int64_t b = 0; b < static_cast<int64_t>(batches.size()); ++b) {
      encode_batch(b);
    }
  }
  return out;
}

std::unique_ptr<nn::Optimizer> MakeOptimizer(std::vector<nn::Var> params,
                                             OptimizerKind kind, float lr,
                                             float momentum) {
  if (kind == OptimizerKind::kAdam) {
    return std::make_unique<nn::Adam>(std::move(params), lr);
  }
  return std::make_unique<nn::Sgd>(std::move(params), lr, momentum);
}

std::vector<std::vector<float>> TensorRows(const nn::Tensor& t) {
  std::vector<std::vector<float>> rows(static_cast<size_t>(t.rows()));
  for (int i = 0; i < t.rows(); ++i) {
    rows[static_cast<size_t>(i)].assign(t.row(i), t.row(i) + t.cols());
  }
  return rows;
}

}  // namespace e2dtc::core
