#ifndef E2DTC_CORE_INSTRUMENTS_H_
#define E2DTC_CORE_INSTRUMENTS_H_

#include "obs/metrics.h"

namespace e2dtc::core {

/// Metric-name catalogs for the trainers, acquired once at trainer
/// construction (registry lookup takes a lock; recording through the cached
/// handles is lock-free). Declaring them here keeps every metric name a
/// trainer emits in one visible place instead of scattered through hot
/// loops as function-local statics.

struct PretrainInstruments {
  obs::Counter batches = obs::Registry::Global().counter("pretrain.batches");
  obs::Counter tokens = obs::Registry::Global().counter("pretrain.tokens");
  obs::Gauge tokens_per_second =
      obs::Registry::Global().gauge("pretrain.tokens_per_second");
  obs::Histogram batch_ms = obs::Registry::Global().histogram(
      "pretrain.batch_ms", obs::ExponentialBuckets(0.5, 2.0, 14));
};

struct SelfTrainInstruments {
  obs::Counter batches = obs::Registry::Global().counter("selftrain.batches");
  obs::Counter tokens = obs::Registry::Global().counter("selftrain.tokens");
  obs::Gauge changed_fraction =
      obs::Registry::Global().gauge("selftrain.changed_fraction");
  obs::Histogram batch_ms = obs::Registry::Global().histogram(
      "selftrain.batch_ms", obs::ExponentialBuckets(0.5, 2.0, 14));
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_INSTRUMENTS_H_
