#ifndef E2DTC_CORE_STATUS_H_
#define E2DTC_CORE_STATUS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/http_server.h"
#include "obs/json.h"

namespace e2dtc::core {

/// Where the pipeline currently is. Unlike ckpt::TrainPhase (which only
/// names checkpointable phases), this covers the whole Fit lifecycle so
/// /statusz and /readyz can tell "embedding" from "training" from "done".
enum class FitPhase : int {
  kIdle = 0,
  kEmbed = 1,
  kPretrain = 2,
  kClusterInit = 3,
  kSelfTrain = 4,
  kDone = 5,
  kFailed = 6,
};

const char* FitPhaseName(FitPhase phase);

/// Point-in-time copy of the live training state, safe to take from any
/// thread at any moment.
struct StatusSnapshot {
  FitPhase phase = FitPhase::kIdle;
  int epoch = 0;         ///< Completed epochs in the current phase.
  int total_epochs = 0;  ///< Scheduled epochs for the current phase.
  uint64_t steps_total = 0;  ///< Optimizer steps applied across all phases.
  double steps_per_second = 0.0;  ///< Over the current phase.
  bool resumed = false;

  /// Loss decomposition from the last completed epoch. Pretraining fills
  /// only recon; self-training fills all four (joint = Eq. 14 weighting).
  double recon_loss = 0.0;
  double kl_loss = 0.0;
  double triplet_loss = 0.0;
  double joint_loss = 0.0;
  double grad_norm = 0.0;

  double last_epoch_seconds = 0.0;
  double avg_epoch_seconds = 0.0;  ///< EMA; the ETA basis.
  double eta_seconds = 0.0;  ///< Remaining epochs x recent epoch rate.

  /// Numerical-health guardrail state for the current phase.
  int health_skipped_batches = 0;
  int health_rollbacks = 0;
  bool health_gave_up = false;

  std::string last_checkpoint_path;      ///< Empty when none saved yet.
  double last_checkpoint_age_seconds = -1.0;  ///< -1 when none saved yet.
};

/// Process-wide live-training status board. Trainers write through relaxed
/// atomics (a handful of stores per epoch, one counter bump per optimizer
/// step — invisible next to the work they describe); HTTP handlers and any
/// other observer read a consistent-enough snapshot without ever taking a
/// lock a training thread holds. The only mutex guards the rarely-written
/// checkpoint-path string, touched at checkpoint saves — never inside the
/// batch hot path.
class TrainStatus {
 public:
  static TrainStatus& Global();

  TrainStatus() = default;
  TrainStatus(const TrainStatus&) = delete;
  TrainStatus& operator=(const TrainStatus&) = delete;

  /// Clears everything back to kIdle. Fit() calls this on entry so one
  /// process running several fits (tests) never shows stale state.
  void Reset();

  /// Phase transition. `start_epoch` seeds the cursor on resumed runs.
  void EnterPhase(FitPhase phase, int total_epochs, int start_epoch = 0);

  /// One applied optimizer step (called after Optimizer::Step).
  void OnBatch() {
    steps_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Epoch boundary: cursor, loss decomposition, and timing.
  void OnEpochEnd(int epochs_done, double recon, double kl, double triplet,
                  double joint, double grad_norm, double seconds);

  /// Health-guardrail tallies for the current phase (monitor totals).
  void SetHealth(int skipped_batches, int rollbacks);
  /// The guardrail exhausted max_rollbacks; /healthz goes 503.
  void OnGiveUp();

  void OnCheckpoint(const std::string& path);
  void SetResumed(bool resumed);

  StatusSnapshot Snapshot() const;

 private:
  std::atomic<int> phase_{0};
  std::atomic<int> epoch_{0};
  std::atomic<int> total_epochs_{0};
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> steps_at_phase_{0};
  std::atomic<uint64_t> phase_enter_us_{0};
  std::atomic<bool> resumed_{false};

  std::atomic<double> recon_{0.0};
  std::atomic<double> kl_{0.0};
  std::atomic<double> triplet_{0.0};
  std::atomic<double> joint_{0.0};
  std::atomic<double> grad_norm_{0.0};
  std::atomic<double> last_epoch_s_{0.0};
  std::atomic<double> avg_epoch_s_{0.0};

  std::atomic<int> skipped_{0};
  std::atomic<int> rollbacks_{0};
  std::atomic<bool> gave_up_{false};

  mutable std::mutex ckpt_mu_;
  std::string ckpt_path_;
  std::atomic<uint64_t> ckpt_us_{0};  ///< MonotonicMicros at last save.
};

/// The /statusz document: the TrainStatus snapshot plus kernel dispatch
/// stats, thread-pool utilization, process uptime, and build identity.
obs::Json StatuszJson();

/// Wires the whole introspection surface onto `server` (call before
/// Start): /metrics, /statusz, /healthz, /readyz, /profilez, and a tiny
/// text index at /.
void RegisterIntrospectionEndpoints(obs::HttpServer* server);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_STATUS_H_
