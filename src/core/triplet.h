#ifndef E2DTC_CORE_TRIPLET_H_
#define E2DTC_CORE_TRIPLET_H_

#include <vector>

namespace e2dtc {
class Rng;
}

namespace e2dtc::core {

/// Picks one in-batch negative per anchor for the triplet loss (Eq. 13):
/// prefer a batch row whose current hard cluster assignment differs from the
/// anchor's; fall back to any other row. Returns per-anchor row indices into
/// the same batch. `batch_assignments[i]` is the current cluster of batch
/// row i. Requires batch size >= 2.
std::vector<int> SampleNegativeRows(const std::vector<int>& batch_assignments,
                                    Rng* rng);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_TRIPLET_H_
