#include "core/seq2seq.h"

#include <algorithm>

#include "util/rng.h"

namespace e2dtc::core {

namespace {

using geo::Vocabulary;
using nn::Var;

/// Blends new and old states so rows past their sequence end do not
/// advance: s = mask * s_new + (1 - mask) * s_old, per layer component.
RnnState MaskedUpdate(const RnnState& old_state, RnnState new_state,
                      const std::vector<bool>& valid) {
  const int batch = old_state.layers[0][0].rows();
  bool all_valid = true;
  for (bool v : valid) all_valid = all_valid && v;
  if (all_valid) return new_state;
  nn::Tensor mask(batch, 1);
  nn::Tensor inv(batch, 1);
  for (int i = 0; i < batch; ++i) {
    mask.at(i, 0) = valid[static_cast<size_t>(i)] ? 1.0f : 0.0f;
    inv.at(i, 0) = valid[static_cast<size_t>(i)] ? 0.0f : 1.0f;
  }
  Var mask_v = Var::Constant(std::move(mask));
  Var inv_v = Var::Constant(std::move(inv));
  for (size_t l = 0; l < old_state.layers.size(); ++l) {
    for (size_t comp = 0; comp < old_state.layers[l].size(); ++comp) {
      new_state.layers[l][comp] =
          nn::Add(nn::Mul(new_state.layers[l][comp], mask_v),
                  nn::Mul(old_state.layers[l][comp], inv_v));
    }
  }
  return new_state;
}

}  // namespace

Seq2SeqModel::Seq2SeqModel(int vocab_size, const ModelConfig& config,
                           Rng* rng)
    : vocab_size_(vocab_size), config_(config) {
  E2DTC_CHECK_GE(vocab_size, Vocabulary::kNumSpecial);
  embedding_ = std::make_unique<nn::Embedding>(vocab_size,
                                               config.embedding_dim, rng);
  AddSubmodule("embedding", embedding_.get());
  if (config.rnn == RnnKind::kGru) {
    gru_encoder_ = std::make_unique<nn::GruStack>(
        config.num_layers, config.embedding_dim, config.hidden_size, rng);
    gru_decoder_ = std::make_unique<nn::GruStack>(
        config.num_layers, config.embedding_dim, config.hidden_size, rng);
    AddSubmodule("encoder", gru_encoder_.get());
    AddSubmodule("decoder", gru_decoder_.get());
    if (config.bidirectional_encoder) {
      gru_encoder_bw_ = std::make_unique<nn::GruStack>(
          config.num_layers, config.embedding_dim, config.hidden_size, rng);
      AddSubmodule("encoder_bw", gru_encoder_bw_.get());
    }
  } else {
    lstm_encoder_ = std::make_unique<nn::LstmStack>(
        config.num_layers, config.embedding_dim, config.hidden_size, rng);
    lstm_decoder_ = std::make_unique<nn::LstmStack>(
        config.num_layers, config.embedding_dim, config.hidden_size, rng);
    AddSubmodule("encoder", lstm_encoder_.get());
    AddSubmodule("decoder", lstm_decoder_.get());
    if (config.bidirectional_encoder) {
      lstm_encoder_bw_ = std::make_unique<nn::LstmStack>(
          config.num_layers, config.embedding_dim, config.hidden_size, rng);
      AddSubmodule("encoder_bw", lstm_encoder_bw_.get());
    }
  }
  proj_weight_ = AddParameter(
      "proj.weight",
      nn::Tensor::Xavier(vocab_size, config.hidden_size, rng));
  proj_bias_ = AddParameter("proj.bias", nn::Tensor(vocab_size, 1));
}

RnnState Seq2SeqModel::InitialState(int batch_size) const {
  RnnState state;
  state.layers.resize(static_cast<size_t>(config_.num_layers));
  for (auto& layer : state.layers) {
    const int comps = config_.rnn == RnnKind::kGru ? 1 : 2;
    for (int c = 0; c < comps; ++c) {
      layer.push_back(
          Var::Constant(nn::Tensor(batch_size, config_.hidden_size)));
    }
  }
  return state;
}

RnnState Seq2SeqModel::Step(StackRole role, const Var& x,
                            const RnnState& state, float dropout,
                            Rng* rng) const {
  RnnState next;
  if (config_.rnn == RnnKind::kGru) {
    const nn::GruStack& stack = role == StackRole::kDecoder ? *gru_decoder_
                                : role == StackRole::kEncoderBw
                                    ? *gru_encoder_bw_
                                    : *gru_encoder_;
    std::vector<Var> h;
    h.reserve(state.layers.size());
    for (const auto& layer : state.layers) h.push_back(layer[0]);
    std::vector<Var> h2 = stack.Step(x, h, dropout, rng);
    next.layers.resize(h2.size());
    for (size_t l = 0; l < h2.size(); ++l) next.layers[l] = {h2[l]};
  } else {
    const nn::LstmStack& stack = role == StackRole::kDecoder
                                     ? *lstm_decoder_
                                 : role == StackRole::kEncoderBw
                                     ? *lstm_encoder_bw_
                                     : *lstm_encoder_;
    std::vector<nn::LstmCell::State> s;
    s.reserve(state.layers.size());
    for (const auto& layer : state.layers) {
      s.push_back(nn::LstmCell::State{layer[0], layer[1]});
    }
    std::vector<nn::LstmCell::State> s2 = stack.Step(x, s, dropout, rng);
    next.layers.resize(s2.size());
    for (size_t l = 0; l < s2.size(); ++l) {
      next.layers[l] = {s2[l].h, s2[l].c};
    }
  }
  return next;
}

Seq2SeqModel::EncodeResult Seq2SeqModel::EncodePass(
    StackRole role, bool reversed, const data::PaddedBatch& batch,
    bool train, Rng* rng) const {
  E2DTC_CHECK_GT(batch.batch_size, 0);
  RnnState state = InitialState(batch.batch_size);
  const float dropout = train ? config_.dropout : 0.0f;
  std::vector<bool> valid(static_cast<size_t>(batch.batch_size));
  Var pooled_sum;  // running sum of masked top-layer hiddens
  for (int t = 0; t < batch.max_len; ++t) {
    int num_valid = 0;
    for (int r = 0; r < batch.batch_size; ++r) {
      valid[static_cast<size_t>(r)] =
          t < batch.lengths[static_cast<size_t>(r)];
      if (valid[static_cast<size_t>(r)]) ++num_valid;
    }
    if (num_valid == 0) break;
    std::vector<int> tokens(static_cast<size_t>(batch.batch_size),
                            Vocabulary::kPad);
    for (int r = 0; r < batch.batch_size; ++r) {
      if (valid[static_cast<size_t>(r)]) {
        const int len = batch.lengths[static_cast<size_t>(r)];
        tokens[static_cast<size_t>(r)] =
            batch.at(r, reversed ? len - 1 - t : t);
      }
    }
    Var x = embedding_->Forward(std::move(tokens));
    RnnState next = Step(role, x, state, dropout, rng);
    if (config_.mean_pool_embedding) {
      Var contribution = next.TopH();
      if (num_valid < batch.batch_size) {
        nn::Tensor mask(batch.batch_size, 1);
        for (int r = 0; r < batch.batch_size; ++r) {
          mask.at(r, 0) = valid[static_cast<size_t>(r)] ? 1.0f : 0.0f;
        }
        contribution = nn::Mul(contribution, Var::Constant(std::move(mask)));
      }
      pooled_sum = pooled_sum.defined() ? nn::Add(pooled_sum, contribution)
                                        : contribution;
    }
    state = MaskedUpdate(state, std::move(next), valid);
  }

  EncodeResult result;
  if (config_.mean_pool_embedding) {
    E2DTC_CHECK(pooled_sum.defined());
    nn::Tensor inv_len(batch.batch_size, 1);
    for (int r = 0; r < batch.batch_size; ++r) {
      inv_len.at(r, 0) =
          1.0f / static_cast<float>(
                     std::max(1, batch.lengths[static_cast<size_t>(r)]));
    }
    result.embedding = nn::Mul(pooled_sum, Var::Constant(std::move(inv_len)));
  } else {
    result.embedding = state.TopH();
  }
  result.state = std::move(state);
  return result;
}

Seq2SeqModel::EncodeResult Seq2SeqModel::Encode(const data::PaddedBatch& batch,
                                                bool train, Rng* rng) const {
  EncodeResult fw =
      EncodePass(StackRole::kEncoderFw, /*reversed=*/false, batch, train,
                 rng);
  if (!config_.bidirectional_encoder) return fw;
  EncodeResult bw =
      EncodePass(StackRole::kEncoderBw, /*reversed=*/true, batch, train,
                 rng);
  // Sum the two directions so every downstream shape ([B, H] embeddings,
  // decoder init states, centroids) is unchanged.
  EncodeResult out;
  out.state.layers.resize(fw.state.layers.size());
  for (size_t l = 0; l < fw.state.layers.size(); ++l) {
    for (size_t c = 0; c < fw.state.layers[l].size(); ++c) {
      out.state.layers[l].push_back(
          nn::Add(fw.state.layers[l][c], bw.state.layers[l][c]));
    }
  }
  out.embedding = config_.mean_pool_embedding
                      ? nn::MulScalar(nn::Add(fw.embedding, bw.embedding),
                                      0.5f)
                      : out.state.TopH();
  return out;
}

Seq2SeqModel::DecodeResult Seq2SeqModel::DecodeLoss(
    const RnnState& encoder_state, const data::PaddedBatch& target,
    const geo::Vocabulary::KnnTable& knn, bool train, Rng* rng) const {
  RnnState state = encoder_state;
  const float dropout = train ? config_.dropout : 0.0f;
  DecodeResult result;
  Var total;
  std::vector<bool> valid(static_cast<size_t>(target.batch_size));
  // Step t consumes input token t (BOS or y_{t-1}) and predicts target
  // y_t (or EOS when t == len). Rows with len >= t are valid.
  for (int t = 0; t <= target.max_len; ++t) {
    std::vector<int> valid_rows;
    for (int r = 0; r < target.batch_size; ++r) {
      valid[static_cast<size_t>(r)] =
          t <= target.lengths[static_cast<size_t>(r)];
      if (valid[static_cast<size_t>(r)]) valid_rows.push_back(r);
    }
    if (valid_rows.empty()) break;
    std::vector<int> inputs(static_cast<size_t>(target.batch_size),
                            Vocabulary::kPad);
    for (int r : valid_rows) {
      inputs[static_cast<size_t>(r)] =
          t == 0 ? Vocabulary::kBos : target.at(r, t - 1);
    }
    Var x = embedding_->Forward(std::move(inputs));
    RnnState next = Step(StackRole::kDecoder, x, state, dropout, rng);
    state = MaskedUpdate(state, std::move(next), valid);

    // Score the valid rows against their targets' KNN candidate sets.
    const int num_valid = static_cast<int>(valid_rows.size());
    Var h_valid = num_valid == target.batch_size
                      ? state.TopH()
                      : nn::GatherRows(state.TopH(), valid_rows);
    nn::KnnCandidates cand;
    cand.k = knn.k;
    cand.indices.resize(static_cast<size_t>(num_valid) * knn.k);
    cand.weights.resize(static_cast<size_t>(num_valid) * knn.k);
    for (int i = 0; i < num_valid; ++i) {
      const int r = valid_rows[static_cast<size_t>(i)];
      const int y = t < target.lengths[static_cast<size_t>(r)]
                        ? target.at(r, t)
                        : Vocabulary::kEos;
      std::copy_n(knn.indices.begin() + static_cast<int64_t>(y) * knn.k,
                  knn.k,
                  cand.indices.begin() + static_cast<int64_t>(i) * knn.k);
      std::copy_n(knn.weights.begin() + static_cast<int64_t>(y) * knn.k,
                  knn.k,
                  cand.weights.begin() + static_cast<int64_t>(i) * knn.k);
    }
    Var step_loss =
        nn::KnnProximityLoss(h_valid, proj_weight_, proj_bias_, cand);
    total = total.defined() ? nn::Add(total, step_loss) : step_loss;
    result.num_tokens += num_valid;
  }
  E2DTC_CHECK(total.defined());
  result.loss_sum = total;
  return result;
}

nn::Tensor Seq2SeqModel::EncodeInference(const data::PaddedBatch& batch) const {
  return Encode(batch, /*train=*/false, nullptr).embedding.value();
}

std::vector<Var> Seq2SeqModel::TrainableParameters() const {
  std::vector<Var> params = Parameters();
  if (config_.freeze_embedding_table) {
    const nn::Node* table = embedding_->table().node().get();
    std::erase_if(params, [table](const Var& v) {
      return v.node().get() == table;
    });
  }
  return params;
}

void SortByLengthDescending(const std::vector<std::vector<int>>& sequences,
                            std::vector<int>* indices) {
  std::stable_sort(indices->begin(), indices->end(), [&](int a, int b) {
    return sequences[static_cast<size_t>(a)].size() >
           sequences[static_cast<size_t>(b)].size();
  });
}

}  // namespace e2dtc::core
