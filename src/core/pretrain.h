#ifndef E2DTC_CORE_PRETRAIN_H_
#define E2DTC_CORE_PRETRAIN_H_

#include <vector>

#include "core/instruments.h"
#include "core/seq2seq.h"
#include "nn/optimizer.h"
#include "util/result.h"

namespace e2dtc {
class ThreadPool;
}

namespace e2dtc::core {

/// Everything Pretrainer::Train produces: the per-epoch history plus the
/// fault-tolerance bookkeeping surfaced into FitResult and the run report.
struct PretrainResult {
  std::vector<PretrainEpochStats> history;
  int skipped_batches = 0;  ///< Updates dropped by the health guardrails.
  int rollbacks = 0;        ///< Restores to the last good epoch boundary.
  bool resumed = false;     ///< Continued from a checkpoint snapshot.
};

/// Phase-2 pre-training (paper Section V-C): the model reconstructs each
/// original trajectory Ta from a corrupted variant Ta' (random drop rate r1,
/// distort rate r2) under the Eq. 8 loss, producing the initial estimate of
/// f_theta.
class Pretrainer {
 public:
  /// See PretrainEpochStats in core/config.h (shared with the live
  /// PretrainConfig::epoch_callback hook).
  using EpochStats = PretrainEpochStats;

  /// All pointers are borrowed and must outlive the trainer.
  Pretrainer(Seq2SeqModel* model, const geo::Vocabulary* vocab,
             const geo::Vocabulary::KnnTable* knn,
             const PretrainConfig& config);

  /// Runs config.epochs over `trajectories`. Respects the fault-tolerance
  /// hooks on PretrainConfig: resumes from config.resume when its phase
  /// matches, checkpoints via config.checkpointer at epoch boundaries, and
  /// returns Status::Cancelled when config.cancel flips (after writing a
  /// final checkpoint). Returns Internal when the health guardrails
  /// exhausted their rollback budget.
  Result<PretrainResult> Train(
      const std::vector<geo::Trajectory>& trajectories);

 private:
  Seq2SeqModel* model_;
  const geo::Vocabulary* vocab_;
  const geo::Vocabulary::KnnTable* knn_;
  PretrainConfig config_;
  PretrainInstruments instr_;
};

/// Batched inference over a whole corpus: the [N, H] trajectory embeddings
/// v_T in input order. With a non-null `pool`, batches are encoded in
/// parallel (inference builds independent graphs per batch; parameters are
/// only read) — the paper's future-work item "speed up the deep clustering
/// process" for multi-core deployments.
nn::Tensor EncodeAll(const Seq2SeqModel& model, const geo::Vocabulary& vocab,
                     const std::vector<geo::Trajectory>& trajectories,
                     int batch_size, bool collapse_consecutive,
                     ThreadPool* pool = nullptr);

/// Tensor rows as a cluster::KMeans-compatible feature matrix.
std::vector<std::vector<float>> TensorRows(const nn::Tensor& t);

/// Instantiates the configured optimizer over `params`.
std::unique_ptr<nn::Optimizer> MakeOptimizer(std::vector<nn::Var> params,
                                             OptimizerKind kind, float lr,
                                             float momentum);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_PRETRAIN_H_
