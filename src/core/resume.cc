#include "core/resume.h"

#include <unordered_map>

#include "util/string_util.h"

namespace e2dtc::core {

namespace {
double At(const std::vector<double>& row, size_t i) {
  return i < row.size() ? row[i] : 0.0;
}
}  // namespace

std::vector<std::vector<double>> PretrainRows(
    const std::vector<PretrainEpochStats>& history) {
  std::vector<std::vector<double>> rows;
  rows.reserve(history.size());
  for (const auto& s : history) {
    rows.push_back({static_cast<double>(s.epoch), s.avg_token_loss,
                    s.grad_norm, s.tokens_per_second, s.seconds,
                    static_cast<double>(s.skipped_batches)});
  }
  return rows;
}

std::vector<PretrainEpochStats> PretrainHistoryFromRows(
    const std::vector<std::vector<double>>& rows) {
  std::vector<PretrainEpochStats> history;
  history.reserve(rows.size());
  for (const auto& row : rows) {
    PretrainEpochStats s;
    s.epoch = static_cast<int>(At(row, 0));
    s.avg_token_loss = At(row, 1);
    s.grad_norm = At(row, 2);
    s.tokens_per_second = At(row, 3);
    s.seconds = At(row, 4);
    s.skipped_batches = static_cast<int>(At(row, 5));
    history.push_back(s);
  }
  return history;
}

std::vector<std::vector<double>> SelfTrainRows(
    const std::vector<SelfTrainEpochStats>& history) {
  std::vector<std::vector<double>> rows;
  rows.reserve(history.size());
  for (const auto& s : history) {
    rows.push_back({static_cast<double>(s.epoch), s.recon_loss,
                    s.cluster_loss, s.triplet_loss, s.grad_norm,
                    s.changed_fraction, s.seconds,
                    static_cast<double>(s.skipped_batches)});
  }
  return rows;
}

std::vector<SelfTrainEpochStats> SelfTrainHistoryFromRows(
    const std::vector<std::vector<double>>& rows) {
  std::vector<SelfTrainEpochStats> history;
  history.reserve(rows.size());
  for (const auto& row : rows) {
    SelfTrainEpochStats s;
    s.epoch = static_cast<int>(At(row, 0));
    s.recon_loss = At(row, 1);
    s.cluster_loss = At(row, 2);
    s.triplet_loss = At(row, 3);
    s.grad_norm = At(row, 4);
    s.changed_fraction = At(row, 5);
    s.seconds = At(row, 6);
    s.skipped_batches = static_cast<int>(At(row, 7));
    history.push_back(s);
  }
  return history;
}

void CaptureTrainingState(const Seq2SeqModel& model,
                          const nn::Optimizer& optimizer, const Rng& rng,
                          ckpt::PhaseSnapshot* snap) {
  snap->params.clear();
  for (const auto& p : model.NamedParameters()) {
    snap->params.emplace_back(p.name, p.var.value());
  }
  snap->optimizer = optimizer.ExportState();
  snap->rng = rng.GetState();
}

Status ApplyTrainingState(const ckpt::PhaseSnapshot& snap,
                          Seq2SeqModel* model, nn::Optimizer* optimizer,
                          Rng* rng) {
  std::unordered_map<std::string, const nn::Tensor*> saved;
  saved.reserve(snap.params.size());
  for (const auto& [name, tensor] : snap.params) saved.emplace(name, &tensor);

  for (auto& p : model->NamedParameters()) {
    auto it = saved.find(p.name);
    if (it == saved.end()) {
      return Status::InvalidArgument("snapshot missing parameter: " + p.name);
    }
    if (!it->second->SameShape(p.var.value())) {
      return Status::InvalidArgument(StrFormat(
          "snapshot shape mismatch for %s: [%dx%d] vs model [%dx%d]",
          p.name.c_str(), it->second->rows(), it->second->cols(),
          p.var.value().rows(), p.var.value().cols()));
    }
    p.var.mutable_value() = *it->second;
  }
  E2DTC_RETURN_IF_ERROR(optimizer->ImportState(snap.optimizer));
  rng->SetState(snap.rng);
  return Status::OK();
}

}  // namespace e2dtc::core
