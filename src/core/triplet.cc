#include "core/triplet.h"

#include "util/check.h"
#include "util/rng.h"

namespace e2dtc::core {

std::vector<int> SampleNegativeRows(const std::vector<int>& batch_assignments,
                                    Rng* rng) {
  const int b = static_cast<int>(batch_assignments.size());
  E2DTC_CHECK_GE(b, 2);
  std::vector<int> negatives(static_cast<size_t>(b));
  for (int i = 0; i < b; ++i) {
    int pick = -1;
    // A few rejection-sampling attempts for a different-cluster row.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int j =
          static_cast<int>(rng->UniformU64(static_cast<uint64_t>(b)));
      if (j == i) continue;
      if (batch_assignments[static_cast<size_t>(j)] !=
          batch_assignments[static_cast<size_t>(i)]) {
        pick = j;
        break;
      }
      if (pick < 0) pick = j;  // fallback: any other row
    }
    if (pick < 0) pick = (i + 1) % b;
    negatives[static_cast<size_t>(i)] = pick;
  }
  return negatives;
}

}  // namespace e2dtc::core
