#include "core/t2vec.h"

namespace e2dtc::core {

Result<T2vecResult> FitT2vecKMeans(const data::Dataset& dataset,
                                   E2dtcConfig config) {
  config.self_train.loss_mode = LossMode::kL0;
  E2DTC_ASSIGN_OR_RETURN(std::unique_ptr<E2dtcPipeline> pipeline,
                         E2dtcPipeline::Fit(dataset, config));
  T2vecResult result;
  result.assignments = pipeline->fit_result().l0_assignments;
  result.embeddings = pipeline->fit_result().l0_embeddings;
  result.total_seconds = pipeline->fit_result().total_seconds;
  result.pipeline = std::move(pipeline);
  return result;
}

}  // namespace e2dtc::core
