#include <unordered_map>

#include "core/e2dtc.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace e2dtc::core {

namespace {

constexpr uint32_t kMagic = 0x50443245;  // "E2DP"
// v4 appends a CRC-32 integrity footer and writes atomically; v3 files (no
// footer) are still loadable.
constexpr uint32_t kVersion = 4;

Status WriteTensor(BinaryWriter* w, const nn::Tensor& t) {
  E2DTC_RETURN_IF_ERROR(w->WriteI32(t.rows()));
  E2DTC_RETURN_IF_ERROR(w->WriteI32(t.cols()));
  return w->WriteFloats(t.storage());
}

Result<nn::Tensor> ReadTensor(BinaryReader* r) {
  E2DTC_ASSIGN_OR_RETURN(int32_t rows, r->ReadI32());
  E2DTC_ASSIGN_OR_RETURN(int32_t cols, r->ReadI32());
  E2DTC_ASSIGN_OR_RETURN(std::vector<float> data, r->ReadFloats());
  if (rows < 0 || cols < 0 ||
      static_cast<int64_t>(data.size()) != static_cast<int64_t>(rows) * cols) {
    return Status::IOError("corrupt tensor");
  }
  return nn::Tensor(rows, cols, std::move(data));
}

}  // namespace

Status E2dtcPipeline::Save(const std::string& path) const {
  return AtomicWrite(path, [&](BinaryWriter* w) -> Status {
    E2DTC_RETURN_IF_ERROR(w->WriteU32(kMagic));
    E2DTC_RETURN_IF_ERROR(w->WriteU32(kVersion));

    // Model configuration (the parts Load needs to rebuild the network).
    const ModelConfig& mc = config_.model;
    E2DTC_RETURN_IF_ERROR(
        w->WriteU32(mc.rnn == RnnKind::kLstm ? 1u : 0u));
    E2DTC_RETURN_IF_ERROR(w->WriteU32(mc.bidirectional_encoder ? 1u : 0u));
    E2DTC_RETURN_IF_ERROR(w->WriteF64(mc.cell_meters));
    E2DTC_RETURN_IF_ERROR(w->WriteI32(mc.vocab_min_count));
    E2DTC_RETURN_IF_ERROR(w->WriteU32(mc.collapse_consecutive ? 1 : 0));
    E2DTC_RETURN_IF_ERROR(w->WriteI32(mc.embedding_dim));
    E2DTC_RETURN_IF_ERROR(w->WriteI32(mc.hidden_size));
    E2DTC_RETURN_IF_ERROR(w->WriteI32(mc.num_layers));
    E2DTC_RETURN_IF_ERROR(w->WriteF32(mc.dropout));
    E2DTC_RETURN_IF_ERROR(w->WriteI32(mc.knn_k));
    E2DTC_RETURN_IF_ERROR(w->WriteF64(mc.knn_alpha_meters));
    E2DTC_RETURN_IF_ERROR(w->WriteU64(mc.seed));

    // Grid + vocabulary.
    const geo::Grid& grid = vocab_->grid();
    E2DTC_RETURN_IF_ERROR(w->WriteF64(grid.box().min_lon));
    E2DTC_RETURN_IF_ERROR(w->WriteF64(grid.box().min_lat));
    E2DTC_RETURN_IF_ERROR(w->WriteF64(grid.box().max_lon));
    E2DTC_RETURN_IF_ERROR(w->WriteF64(grid.box().max_lat));
    E2DTC_RETURN_IF_ERROR(
        w->WriteU64(static_cast<uint64_t>(vocab_->cells().size())));
    for (size_t i = 0; i < vocab_->cells().size(); ++i) {
      E2DTC_RETURN_IF_ERROR(
          w->WriteU64(static_cast<uint64_t>(vocab_->cells()[i])));
      E2DTC_RETURN_IF_ERROR(
          w->WriteU64(static_cast<uint64_t>(vocab_->counts()[i])));
    }

    // Network parameters, name-tagged.
    const auto params = model_->NamedParameters();
    E2DTC_RETURN_IF_ERROR(w->WriteU32(static_cast<uint32_t>(params.size())));
    for (const auto& p : params) {
      E2DTC_RETURN_IF_ERROR(w->WriteString(p.name));
      E2DTC_RETURN_IF_ERROR(WriteTensor(w, p.var.value()));
    }

    // Clustering state.
    E2DTC_RETURN_IF_ERROR(w->WriteI32(fit_result_.k));
    E2DTC_RETURN_IF_ERROR(WriteTensor(w, fit_result_.centroids));
    return w->WriteCrcFooter();
  });
}

Result<std::unique_ptr<E2dtcPipeline>> E2dtcPipeline::Load(
    const std::string& path) {
  BinaryReader r(path);
  if (!r.Ok()) return Status::IOError("cannot open for reading: " + path);
  E2DTC_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) return Status::IOError("bad pipeline magic: " + path);
  E2DTC_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != 3 && version != kVersion) {
    return Status::IOError(StrFormat("unsupported version %u", version));
  }

  auto pipeline = std::unique_ptr<E2dtcPipeline>(new E2dtcPipeline());
  ModelConfig& mc = pipeline->config_.model;
  E2DTC_ASSIGN_OR_RETURN(uint32_t rnn_kind, r.ReadU32());
  if (rnn_kind > 1) return Status::IOError("bad rnn kind");
  mc.rnn = rnn_kind == 1 ? RnnKind::kLstm : RnnKind::kGru;
  E2DTC_ASSIGN_OR_RETURN(uint32_t bidir, r.ReadU32());
  if (bidir > 1) return Status::IOError("bad bidirectional flag");
  mc.bidirectional_encoder = bidir == 1;
  E2DTC_ASSIGN_OR_RETURN(mc.cell_meters, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(mc.vocab_min_count, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(uint32_t collapse, r.ReadU32());
  mc.collapse_consecutive = collapse != 0;
  E2DTC_ASSIGN_OR_RETURN(mc.embedding_dim, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(mc.hidden_size, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(mc.num_layers, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(mc.dropout, r.ReadF32());
  E2DTC_ASSIGN_OR_RETURN(mc.knn_k, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(mc.knn_alpha_meters, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(mc.seed, r.ReadU64());

  geo::BoundingBox box;
  E2DTC_ASSIGN_OR_RETURN(box.min_lon, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(box.min_lat, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(box.max_lon, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(box.max_lat, r.ReadF64());
  E2DTC_ASSIGN_OR_RETURN(geo::Grid grid,
                         geo::Grid::Create(box, mc.cell_meters));
  E2DTC_ASSIGN_OR_RETURN(uint64_t num_cells, r.ReadU64());
  if (num_cells > (1ULL << 26)) return Status::IOError("implausible vocab");
  std::vector<int64_t> cells(static_cast<size_t>(num_cells));
  std::vector<int64_t> counts(static_cast<size_t>(num_cells));
  for (size_t i = 0; i < num_cells; ++i) {
    E2DTC_ASSIGN_OR_RETURN(uint64_t cell, r.ReadU64());
    E2DTC_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
    cells[i] = static_cast<int64_t>(cell);
    counts[i] = static_cast<int64_t>(count);
  }
  pipeline->vocab_ = geo::Vocabulary::FromCells(grid, std::move(cells),
                                                std::move(counts));
  const double alpha =
      mc.knn_alpha_meters > 0.0 ? mc.knn_alpha_meters : mc.cell_meters / 4.0;
  pipeline->knn_ = pipeline->vocab_->BuildKnnTable(mc.knn_k, alpha);

  Rng rng(mc.seed);
  pipeline->model_ = std::make_unique<Seq2SeqModel>(
      pipeline->vocab_->size(), mc, &rng);
  auto params = pipeline->model_->NamedParameters();
  std::unordered_map<std::string, nn::Var> by_name;
  for (auto& p : params) by_name.emplace(p.name, p.var);
  E2DTC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (uint32_t i = 0; i < count; ++i) {
    E2DTC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    E2DTC_ASSIGN_OR_RETURN(nn::Tensor tensor, ReadTensor(&r));
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("unexpected parameter: " + name);
    }
    if (!tensor.SameShape(it->second.value())) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    it->second.mutable_value() = std::move(tensor);
  }

  E2DTC_ASSIGN_OR_RETURN(pipeline->fit_result_.k, r.ReadI32());
  E2DTC_ASSIGN_OR_RETURN(pipeline->fit_result_.centroids, ReadTensor(&r));
  if (version >= 4) {
    E2DTC_RETURN_IF_ERROR(r.VerifyCrcFooter());
  }
  pipeline->config_.self_train.k = pipeline->fit_result_.k;
  return pipeline;
}

}  // namespace e2dtc::core
