#ifndef E2DTC_CORE_CONFIG_H_
#define E2DTC_CORE_CONFIG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/health.h"
#include "geo/augment.h"

namespace e2dtc::core {

/// Which terms of the joint loss (Eq. 14) are active — the paper's Table IV
/// ablation. L0 = reconstruction only (pre-train + k-means == the t2vec
/// baseline); L1 adds the KL clustering loss (Eq. 12); L2 adds the triplet
/// loss (the full E2DTC).
enum class LossMode { kL0, kL1, kL2 };

/// Recurrent cell family. The paper picks GRU over LSTM for its better
/// embedding quality (Section VII-B); both are implemented so the claim can
/// be checked (bench_ablation_design).
enum class RnnKind { kGru, kLstm };

/// Architecture / discretization parameters (paper Section VII-B: 300 m
/// cells, 3-layer GRU, Adam lr 1e-4, gradient clip 5).
struct ModelConfig {
  RnnKind rnn = RnnKind::kGru;
  /// Run a second encoder stack over each sequence reversed and sum the
  /// two final states (t2vec's bidirectional encoder). Doubles encoder
  /// cost; ablated in bench_ablation_design.
  bool bidirectional_encoder = false;
  double cell_meters = 300.0;    ///< Grid cell side.
  int vocab_min_count = 2;       ///< Hot-cell threshold.
  bool collapse_consecutive = true;  ///< Collapse repeated cell tokens.
  int embedding_dim = 64;
  int hidden_size = 64;
  int num_layers = 3;
  float dropout = 0.1f;
  int knn_k = 16;                ///< Candidate cells in the Eq. 8 loss.
  /// Trajectory representation v_T: mean-pool the top-layer hidden states
  /// over (valid) timesteps, or take the final hidden state only. Mean
  /// pooling is markedly more cluster-friendly for wandering trajectories.
  bool mean_pool_embedding = false;
  /// Keep the skip-gram-initialized token embedding table fixed during
  /// pre-/self-training. At small corpus scale the decoder's language-model
  /// pressure otherwise destroys the table's spatial geometry, collapsing
  /// the trajectory embeddings (see DESIGN.md).
  bool freeze_embedding_table = true;
  /// Skip-gram pre-training effort for the cell vectors (Eq. 7). The cell
  /// co-occurrence statistics are the backbone of the whole pipeline, so we
  /// train them hard; this phase is cheap relative to the seq2seq phases.
  int skipgram_epochs = 15;
  int skipgram_window = 12;
  int skipgram_negatives = 5;
  /// After skip-gram training, diffuse each cell vector over its spatial
  /// KNN this many times (weights exp(-d/cell_meters)). Enforces Eq. 7's
  /// "neighboring cells get similar representations" even where the
  /// co-occurrence statistics are sparse. 0 disables.
  int cell_embedding_smooth_rounds = 2;
  /// Proximity temperature (Eq. 8's alpha), meters. <= 0 means use
  /// cell_meters / 4 — sharp enough that the true target dominates the
  /// Eq. 8 weights (a near-uniform target distribution carries no signal).
  double knn_alpha_meters = -1.0;
  uint64_t seed = 7;
};

/// Per-epoch stats from phase-2 pre-training. Defined here (not on
/// Pretrainer) so PretrainConfig can carry a live progress callback typed on
/// it; Pretrainer::EpochStats aliases this for existing callers.
struct PretrainEpochStats {
  int epoch = 0;
  double avg_token_loss = 0.0;
  double grad_norm = 0.0;  ///< Pre-clip norm of the last step.
  double tokens_per_second = 0.0;  ///< Target-token throughput this epoch.
  double seconds = 0.0;
  /// Batches whose update was dropped by the health guardrails.
  int skipped_batches = 0;
};

/// Per-epoch stats from phase-3 self-training; SelfTrainer::EpochStats
/// aliases this.
struct SelfTrainEpochStats {
  int epoch = 0;
  double recon_loss = 0.0;    ///< Per-token L_r.
  double cluster_loss = 0.0;  ///< Per-sample L_c.
  double triplet_loss = 0.0;  ///< Per-batch-mean L_t.
  double grad_norm = 0.0;     ///< Pre-clip norm of the last step.
  double changed_fraction = 1.0;  ///< Hard assignments changed vs. prev.
  double seconds = 0.0;
  /// Batches whose update was dropped by the health guardrails.
  int skipped_batches = 0;
};

/// Live per-epoch observers: invoked right after each epoch's stats are
/// final, on the training thread. Callers (CLI progress lines, run-report
/// sinks, future early stopping) must be cheap and must not mutate the
/// trainer.
using PretrainEpochCallback = std::function<void(const PretrainEpochStats&)>;
using SelfTrainEpochCallback =
    std::function<void(const SelfTrainEpochStats&)>;

/// Which optimizer a training phase uses. The paper uses Adam (lr 1e-4,
/// 500 iterations on ~86k trajectories). At this repo's reduced bench scale
/// Adam's per-parameter step normalization amplifies gradient noise enough
/// to destroy the encoder's (useful) initialization, so SGD + momentum is
/// the default here; Adam remains available for paper-scale runs.
enum class OptimizerKind { kSgd, kAdam };

/// Phase-2 pre-training (Section V-C).
struct PretrainConfig {
  int epochs = 8;
  int batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  float lr = 0.05f;              ///< SGD default; use ~1e-4 with Adam.
  float momentum = 0.9f;         ///< SGD only.
  float grad_clip = 5.0f;
  /// Corruption pairs sampled per trajectory per epoch. The paper
  /// enumerates all 16 (r1, r2) combinations; sampling keeps epochs short
  /// while covering the same grid in expectation.
  int variants_per_trajectory = 1;
  geo::AugmentConfig augment;
  uint64_t seed = 11;
  /// Optional live progress hook, called once per finished epoch.
  PretrainEpochCallback epoch_callback;
  /// Numerical-health guardrails (skip poisoned batches, roll back on
  /// persistent poison); see core/health.h.
  HealthConfig health;
  /// Fault-tolerance hooks, wired by E2dtcPipeline::Fit (all borrowed).
  /// Non-null `checkpointer` persists a full-state snapshot at epoch
  /// boundaries; `resume` (a snapshot whose phase matches) restores it so
  /// the run continues bitwise-identically; `cancel` is polled between
  /// batches — when it flips true the current batch finishes, a final
  /// checkpoint is written, and Train returns Status::Cancelled.
  ckpt::Checkpointer* checkpointer = nullptr;
  const ckpt::PhaseSnapshot* resume = nullptr;
  const std::atomic<bool>* cancel = nullptr;
};

/// Phase-3 self-training (Section V-D, Algorithm 1).
struct SelfTrainConfig {
  /// Number of clusters; 0 means use the dataset's cluster count.
  int k = 0;
  int max_iters = 8;             ///< MaxIter2 (epochs over the corpus).
  float beta = 0.1f;             ///< Clustering-loss weight (Eq. 14).
  float gamma = 0.02f;           ///< Triplet-loss weight (Eq. 14).
  float triplet_margin = 1.0f;
  /// Stop when the fraction of changed hard assignments between epochs
  /// falls to/below this (Algorithm 1 line 8's delta).
  double delta = 0.005;
  int batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  float lr = 0.01f;              ///< Gentler than pre-training: refine, not
                                 ///< re-learn. Use ~1e-4 with Adam.
  float momentum = 0.9f;         ///< SGD only.
  float grad_clip = 5.0f;
  LossMode loss_mode = LossMode::kL2;
  uint64_t seed = 13;
  /// Optional per-epoch observer: called with (epoch, hard assignments)
  /// right after the Algorithm 1 line-7 refresh, before the delta check.
  /// Used by the Fig. 5 learning-process harness.
  std::function<void(int, const std::vector<int>&)> epoch_observer;
  /// Optional live progress hook, called once per finished epoch (including
  /// the final, possibly-converged one).
  SelfTrainEpochCallback epoch_callback;
  /// Numerical-health guardrails; see core/health.h.
  HealthConfig health;
  /// Fault-tolerance hooks, wired by E2dtcPipeline::Fit (all borrowed);
  /// same semantics as on PretrainConfig.
  ckpt::Checkpointer* checkpointer = nullptr;
  const ckpt::PhaseSnapshot* resume = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  /// Pipeline context baked into every self-training checkpoint so a
  /// resumed run can skip phases 1-2 entirely (borrowed; may be null when
  /// not checkpointing): the L0 baseline and the pretrain history rows.
  const nn::Tensor* ckpt_l0_embeddings = nullptr;
  const std::vector<int>* ckpt_l0_assignments = nullptr;
  const std::vector<std::vector<double>>* ckpt_pretrain_stats = nullptr;
};

/// Everything needed to fit the full pipeline.
struct E2dtcConfig {
  ModelConfig model;
  PretrainConfig pretrain;
  SelfTrainConfig self_train;
  /// Worker threads for corpus encoding (EncodeAll) during k-means init,
  /// self-training refreshes, and serving. <= 1 keeps everything on the
  /// calling thread. Training math is unaffected: encoding is inference.
  int num_encode_threads = 1;
  /// Crash-safe checkpointing: where and how often to persist full-state
  /// snapshots, and whether to resume from the newest one. Disabled while
  /// `checkpoint.dir` is empty.
  ckpt::CheckpointOptions checkpoint;
  /// Cooperative cancellation (SIGINT/SIGTERM): when non-null and flipped
  /// true, training finishes its current batch, writes a final checkpoint,
  /// and Fit returns Status::Cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_CONFIG_H_
