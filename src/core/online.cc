#include "core/online.h"

#include "nn/losses.h"
#include "util/check.h"

namespace e2dtc::core {

OnlineClusterer::OnlineClusterer(const E2dtcPipeline* pipeline,
                                 double count_prior)
    : pipeline_(pipeline),
      centroids_(pipeline->fit_result().centroids),
      counts_(static_cast<size_t>(pipeline->fit_result().centroids.rows()),
              count_prior) {
  E2DTC_CHECK(pipeline != nullptr);
  E2DTC_CHECK_GT(centroids_.rows(), 0);
  E2DTC_CHECK_GE(count_prior, 1.0);
}

std::vector<int> OnlineClusterer::AssignAndAdapt(
    const std::vector<geo::Trajectory>& batch) {
  if (batch.empty()) return {};
  nn::Tensor emb = pipeline_->Embed(batch);
  nn::Tensor q = nn::StudentTAssignmentValue(emb, centroids_);
  std::vector<int> assigned = HardAssignments(q);
  for (int i = 0; i < emb.rows(); ++i) {
    const int j = assigned[static_cast<size_t>(i)];
    counts_[static_cast<size_t>(j)] += 1.0;
    const float lr =
        static_cast<float>(1.0 / counts_[static_cast<size_t>(j)]);
    float* c = centroids_.row(j);
    const float* v = emb.row(i);
    for (int d = 0; d < centroids_.cols(); ++d) {
      c[d] += lr * (v[d] - c[d]);
    }
  }
  num_seen_ += emb.rows();
  return assigned;
}

std::vector<int> OnlineClusterer::Assign(
    const std::vector<geo::Trajectory>& batch) const {
  if (batch.empty()) return {};
  nn::Tensor emb = pipeline_->Embed(batch);
  return HardAssignments(nn::StudentTAssignmentValue(emb, centroids_));
}

int OnlineClusterer::AssignOne(const geo::Trajectory& trajectory) const {
  return Assign({trajectory})[0];
}

}  // namespace e2dtc::core
