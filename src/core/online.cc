#include "core/online.h"

#include "nn/losses.h"
#include "util/check.h"

namespace e2dtc::core {

OnlineClusterer::OnlineClusterer(const E2dtcPipeline* pipeline,
                                 double count_prior)
    : pipeline_(pipeline),
      k_(pipeline->fit_result().centroids.rows()),
      centroids_(pipeline->fit_result().centroids),
      counts_(static_cast<size_t>(pipeline->fit_result().centroids.rows()),
              count_prior) {
  E2DTC_CHECK(pipeline != nullptr);
  E2DTC_CHECK_GT(k_, 0);
  E2DTC_CHECK_GE(count_prior, 1.0);
}

std::vector<int> OnlineClusterer::AssignAndAdapt(
    const std::vector<geo::Trajectory>& batch) {
  if (batch.empty()) return {};
  return AssignAndAdaptEmbedded(pipeline_->Embed(batch));
}

std::vector<int> OnlineClusterer::Assign(
    const std::vector<geo::Trajectory>& batch) const {
  if (batch.empty()) return {};
  return AssignEmbedded(pipeline_->Embed(batch));
}

int OnlineClusterer::AssignOne(const geo::Trajectory& trajectory) const {
  return Assign({trajectory})[0];
}

std::vector<int> OnlineClusterer::AssignAndAdaptEmbedded(
    const nn::Tensor& embeddings) {
  if (embeddings.rows() == 0) return {};
  std::lock_guard<std::mutex> lock(mu_);
  nn::Tensor q = nn::StudentTAssignmentValue(embeddings, centroids_);
  std::vector<int> assigned = HardAssignments(q);
  for (int i = 0; i < embeddings.rows(); ++i) {
    const int j = assigned[static_cast<size_t>(i)];
    counts_[static_cast<size_t>(j)] += 1.0;
    const float lr =
        static_cast<float>(1.0 / counts_[static_cast<size_t>(j)]);
    float* c = centroids_.row(j);
    const float* v = embeddings.row(i);
    for (int d = 0; d < centroids_.cols(); ++d) {
      c[d] += lr * (v[d] - c[d]);
    }
  }
  num_seen_ += embeddings.rows();
  return assigned;
}

std::vector<int> OnlineClusterer::AssignEmbedded(
    const nn::Tensor& embeddings) const {
  if (embeddings.rows() == 0) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return HardAssignments(nn::StudentTAssignmentValue(embeddings, centroids_));
}

nn::Tensor OnlineClusterer::centroids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return centroids_;
}

int64_t OnlineClusterer::num_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_seen_;
}

}  // namespace e2dtc::core
