#ifndef E2DTC_CORE_RESUME_H_
#define E2DTC_CORE_RESUME_H_

#include <vector>

#include "ckpt/checkpoint.h"
#include "core/config.h"
#include "core/seq2seq.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace e2dtc::core {

/// Conversions between the typed per-epoch stats in core/config.h and the
/// opaque numeric rows a ckpt::PhaseSnapshot carries (the ckpt layer sits
/// below core, so it cannot name these structs). Field order is part of the
/// snapshot format: append new fields at the end only.
std::vector<std::vector<double>> PretrainRows(
    const std::vector<PretrainEpochStats>& history);
std::vector<PretrainEpochStats> PretrainHistoryFromRows(
    const std::vector<std::vector<double>>& rows);
std::vector<std::vector<double>> SelfTrainRows(
    const std::vector<SelfTrainEpochStats>& history);
std::vector<SelfTrainEpochStats> SelfTrainHistoryFromRows(
    const std::vector<std::vector<double>>& rows);

/// Copies the phase-independent training state — every named model
/// parameter (frozen ones included), the optimizer's moment buffers, and
/// the RNG engine — into `snap`. Phase, epoch cursor, and self-training
/// bookkeeping are the caller's to fill.
void CaptureTrainingState(const Seq2SeqModel& model,
                          const nn::Optimizer& optimizer, const Rng& rng,
                          ckpt::PhaseSnapshot* snap);

/// Restores what CaptureTrainingState saved. Parameters are matched by
/// name and shape-checked; the optimizer must have the same parameter
/// layout it had at capture time. InvalidArgument on any mismatch, leaving
/// the model partially updated only on error (callers treat that as fatal).
Status ApplyTrainingState(const ckpt::PhaseSnapshot& snap,
                          Seq2SeqModel* model, nn::Optimizer* optimizer,
                          Rng* rng);

}  // namespace e2dtc::core

#endif  // E2DTC_CORE_RESUME_H_
