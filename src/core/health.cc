#include "core/health.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace e2dtc::core {

namespace {

obs::Counter SkippedCounter() {
  static obs::Counter c =
      obs::Registry::Global().counter("health.skipped_batches");
  return c;
}

obs::Counter NonFiniteCounter() {
  static obs::Counter c =
      obs::Registry::Global().counter("health.nonfinite_batches");
  return c;
}

obs::Counter DivergedCounter() {
  static obs::Counter c =
      obs::Registry::Global().counter("health.diverged_batches");
  return c;
}

obs::Counter RollbackCounter() {
  static obs::Counter c = obs::Registry::Global().counter("health.rollbacks");
  return c;
}

double Median(const std::deque<double>& window) {
  std::vector<double> v(window.begin(), window.end());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

HealthMonitor::Verdict HealthMonitor::Check(double loss, double grad_norm) {
  if (!config_.enabled) return Verdict::kOk;

  const bool non_finite = !std::isfinite(loss) || !std::isfinite(grad_norm);
  bool diverged = false;
  if (!non_finite &&
      static_cast<int>(window_.size()) >= config_.min_history) {
    const double median = Median(window_);
    diverged = median > 0.0 && loss > config_.divergence_factor * median;
  }

  if (!non_finite && !diverged) {
    consecutive_skips_ = 0;
    window_.push_back(loss);
    while (static_cast<int>(window_.size()) > config_.median_window) {
      window_.pop_front();
    }
    return Verdict::kOk;
  }

  ++skipped_batches_;
  ++consecutive_skips_;
  SkippedCounter().Increment();
  if (non_finite) {
    NonFiniteCounter().Increment();
    E2DTC_LOG(Warning) << "non-finite batch (loss " << loss << ", grad norm "
                       << grad_norm << "); skipping update";
  } else {
    DivergedCounter().Increment();
    E2DTC_LOG(Warning) << "diverging batch (loss " << loss << " > "
                       << config_.divergence_factor
                       << "x trailing median); skipping update";
  }
  if (consecutive_skips_ >= config_.max_consecutive_skips) {
    return Verdict::kRollback;
  }
  return Verdict::kSkipBatch;
}

void HealthMonitor::OnRollback() {
  ++rollbacks_;
  consecutive_skips_ = 0;
  window_.clear();
  RollbackCounter().Increment();
}

}  // namespace e2dtc::core
