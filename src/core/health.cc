#include "core/health.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace e2dtc::core {

namespace {

/// Metric-name catalog for the health guardrails, resolved once per
/// process.
struct Instruments {
  obs::Counter skipped =
      obs::Registry::Global().counter("health.skipped_batches");
  obs::Counter nonfinite =
      obs::Registry::Global().counter("health.nonfinite_batches");
  obs::Counter diverged =
      obs::Registry::Global().counter("health.diverged_batches");
  obs::Counter rollbacks = obs::Registry::Global().counter("health.rollbacks");
};

Instruments& Instr() {
  static Instruments* instr = new Instruments();
  return *instr;
}

double Median(const std::deque<double>& window) {
  std::vector<double> v(window.begin(), window.end());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

HealthMonitor::Verdict HealthMonitor::Check(double loss, double grad_norm) {
  if (!config_.enabled) return Verdict::kOk;

  const bool non_finite = !std::isfinite(loss) || !std::isfinite(grad_norm);
  bool diverged = false;
  if (!non_finite &&
      static_cast<int>(window_.size()) >= config_.min_history) {
    const double median = Median(window_);
    diverged = median > 0.0 && loss > config_.divergence_factor * median;
  }

  if (!non_finite && !diverged) {
    consecutive_skips_ = 0;
    window_.push_back(loss);
    while (static_cast<int>(window_.size()) > config_.median_window) {
      window_.pop_front();
    }
    return Verdict::kOk;
  }

  ++skipped_batches_;
  ++consecutive_skips_;
  Instr().skipped.Increment();
  if (non_finite) {
    Instr().nonfinite.Increment();
    E2DTC_LOG(Warning) << "non-finite batch (loss " << loss << ", grad norm "
                       << grad_norm << "); skipping update";
  } else {
    Instr().diverged.Increment();
    E2DTC_LOG(Warning) << "diverging batch (loss " << loss << " > "
                       << config_.divergence_factor
                       << "x trailing median); skipping update";
  }
  if (consecutive_skips_ >= config_.max_consecutive_skips) {
    return Verdict::kRollback;
  }
  return Verdict::kSkipBatch;
}

void HealthMonitor::OnRollback() {
  ++rollbacks_;
  consecutive_skips_ = 0;
  window_.clear();
  Instr().rollbacks.Increment();
}

}  // namespace e2dtc::core
