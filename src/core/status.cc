#include "core/status.h"

#include "nn/autotune.h"
#include "nn/kernels.h"
#include "obs/build_info.h"
#include "obs/exposition.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace e2dtc::core {

const char* FitPhaseName(FitPhase phase) {
  switch (phase) {
    case FitPhase::kIdle:
      return "idle";
    case FitPhase::kEmbed:
      return "embed";
    case FitPhase::kPretrain:
      return "pretrain";
    case FitPhase::kClusterInit:
      return "cluster_init";
    case FitPhase::kSelfTrain:
      return "self_train";
    case FitPhase::kDone:
      return "done";
    case FitPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

TrainStatus& TrainStatus::Global() {
  static TrainStatus* status = new TrainStatus();
  return *status;
}

void TrainStatus::Reset() {
  phase_.store(0, std::memory_order_relaxed);
  epoch_.store(0, std::memory_order_relaxed);
  total_epochs_.store(0, std::memory_order_relaxed);
  steps_.store(0, std::memory_order_relaxed);
  steps_at_phase_.store(0, std::memory_order_relaxed);
  phase_enter_us_.store(obs::MonotonicMicros(), std::memory_order_relaxed);
  resumed_.store(false, std::memory_order_relaxed);
  recon_.store(0.0, std::memory_order_relaxed);
  kl_.store(0.0, std::memory_order_relaxed);
  triplet_.store(0.0, std::memory_order_relaxed);
  joint_.store(0.0, std::memory_order_relaxed);
  grad_norm_.store(0.0, std::memory_order_relaxed);
  last_epoch_s_.store(0.0, std::memory_order_relaxed);
  avg_epoch_s_.store(0.0, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  rollbacks_.store(0, std::memory_order_relaxed);
  gave_up_.store(false, std::memory_order_relaxed);
  ckpt_us_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_path_.clear();
  }
}

void TrainStatus::EnterPhase(FitPhase phase, int total_epochs,
                             int start_epoch) {
  phase_.store(static_cast<int>(phase), std::memory_order_relaxed);
  total_epochs_.store(total_epochs, std::memory_order_relaxed);
  epoch_.store(start_epoch, std::memory_order_relaxed);
  steps_at_phase_.store(steps_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  phase_enter_us_.store(obs::MonotonicMicros(), std::memory_order_relaxed);
  // Epoch timing is per-phase: a pretrain epoch says nothing about a
  // self-train epoch's duration, so the ETA basis resets.
  last_epoch_s_.store(0.0, std::memory_order_relaxed);
  avg_epoch_s_.store(0.0, std::memory_order_relaxed);
  skipped_.store(0, std::memory_order_relaxed);
  rollbacks_.store(0, std::memory_order_relaxed);
}

void TrainStatus::OnEpochEnd(int epochs_done, double recon, double kl,
                             double triplet, double joint, double grad_norm,
                             double seconds) {
  epoch_.store(epochs_done, std::memory_order_relaxed);
  recon_.store(recon, std::memory_order_relaxed);
  kl_.store(kl, std::memory_order_relaxed);
  triplet_.store(triplet, std::memory_order_relaxed);
  joint_.store(joint, std::memory_order_relaxed);
  grad_norm_.store(grad_norm, std::memory_order_relaxed);
  last_epoch_s_.store(seconds, std::memory_order_relaxed);
  // EMA with alpha 0.5: recent epochs dominate (self-training epochs
  // shorten as clusters sharpen), first epoch seeds it directly.
  const double prev = avg_epoch_s_.load(std::memory_order_relaxed);
  avg_epoch_s_.store(prev <= 0.0 ? seconds : 0.5 * prev + 0.5 * seconds,
                     std::memory_order_relaxed);
}

void TrainStatus::SetHealth(int skipped_batches, int rollbacks) {
  skipped_.store(skipped_batches, std::memory_order_relaxed);
  rollbacks_.store(rollbacks, std::memory_order_relaxed);
}

void TrainStatus::OnGiveUp() {
  gave_up_.store(true, std::memory_order_relaxed);
  phase_.store(static_cast<int>(FitPhase::kFailed),
               std::memory_order_relaxed);
}

void TrainStatus::OnCheckpoint(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_path_ = path;
  }
  ckpt_us_.store(obs::MonotonicMicros(), std::memory_order_relaxed);
}

void TrainStatus::SetResumed(bool resumed) {
  resumed_.store(resumed, std::memory_order_relaxed);
}

StatusSnapshot TrainStatus::Snapshot() const {
  StatusSnapshot snap;
  snap.phase = static_cast<FitPhase>(phase_.load(std::memory_order_relaxed));
  snap.epoch = epoch_.load(std::memory_order_relaxed);
  snap.total_epochs = total_epochs_.load(std::memory_order_relaxed);
  snap.steps_total = steps_.load(std::memory_order_relaxed);
  snap.resumed = resumed_.load(std::memory_order_relaxed);
  snap.recon_loss = recon_.load(std::memory_order_relaxed);
  snap.kl_loss = kl_.load(std::memory_order_relaxed);
  snap.triplet_loss = triplet_.load(std::memory_order_relaxed);
  snap.joint_loss = joint_.load(std::memory_order_relaxed);
  snap.grad_norm = grad_norm_.load(std::memory_order_relaxed);
  snap.last_epoch_seconds = last_epoch_s_.load(std::memory_order_relaxed);
  snap.avg_epoch_seconds = avg_epoch_s_.load(std::memory_order_relaxed);
  snap.health_skipped_batches = skipped_.load(std::memory_order_relaxed);
  snap.health_rollbacks = rollbacks_.load(std::memory_order_relaxed);
  snap.health_gave_up = gave_up_.load(std::memory_order_relaxed);

  const uint64_t now_us = obs::MonotonicMicros();
  const uint64_t phase_us = phase_enter_us_.load(std::memory_order_relaxed);
  const uint64_t phase_steps =
      snap.steps_total - steps_at_phase_.load(std::memory_order_relaxed);
  const double phase_seconds =
      now_us > phase_us ? static_cast<double>(now_us - phase_us) / 1e6 : 0.0;
  snap.steps_per_second =
      phase_seconds > 0.0 ? static_cast<double>(phase_steps) / phase_seconds
                          : 0.0;
  const int remaining = snap.total_epochs - snap.epoch;
  snap.eta_seconds =
      remaining > 0 && snap.avg_epoch_seconds > 0.0
          ? static_cast<double>(remaining) * snap.avg_epoch_seconds
          : 0.0;

  const uint64_t ckpt_us = ckpt_us_.load(std::memory_order_relaxed);
  if (ckpt_us > 0) {
    snap.last_checkpoint_age_seconds =
        now_us > ckpt_us ? static_cast<double>(now_us - ckpt_us) / 1e6 : 0.0;
  }
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    snap.last_checkpoint_path = ckpt_path_;
  }
  return snap;
}

obs::Json StatuszJson() {
  const StatusSnapshot snap = TrainStatus::Global().Snapshot();
  obs::Json doc = obs::Json::Object();

  obs::Json train = obs::Json::Object();
  train.Set("phase", FitPhaseName(snap.phase));
  train.Set("epoch", snap.epoch);
  train.Set("total_epochs", snap.total_epochs);
  train.Set("steps_total", snap.steps_total);
  train.Set("steps_per_second", snap.steps_per_second);
  train.Set("resumed", snap.resumed);
  obs::Json loss = obs::Json::Object();
  loss.Set("recon", snap.recon_loss);
  loss.Set("kl", snap.kl_loss);
  loss.Set("triplet", snap.triplet_loss);
  loss.Set("joint", snap.joint_loss);
  loss.Set("grad_norm", snap.grad_norm);
  train.Set("loss", std::move(loss));
  train.Set("last_epoch_seconds", snap.last_epoch_seconds);
  train.Set("avg_epoch_seconds", snap.avg_epoch_seconds);
  train.Set("eta_seconds", snap.eta_seconds);
  doc.Set("train", std::move(train));

  obs::Json health = obs::Json::Object();
  health.Set("ok", !snap.health_gave_up);
  health.Set("skipped_batches", snap.health_skipped_batches);
  health.Set("rollbacks", snap.health_rollbacks);
  health.Set("gave_up", snap.health_gave_up);
  doc.Set("health", std::move(health));

  obs::Json checkpoint = obs::Json::Object();
  checkpoint.Set("path", snap.last_checkpoint_path);
  checkpoint.Set("age_seconds", snap.last_checkpoint_age_seconds);
  doc.Set("checkpoint", std::move(checkpoint));

  const nn::kernels::DispatchStats kernels = nn::kernels::GetDispatchStats();
  obs::Json dispatch = obs::Json::Object();
  dispatch.Set("dispatches", kernels.dispatches);
  dispatch.Set("parallel_dispatches", kernels.parallel_dispatches);
  dispatch.Set("macs", kernels.macs);
  dispatch.Set("fused_dispatches", kernels.fused_dispatches);
  dispatch.Set("fused_parallel_dispatches",
               kernels.fused_parallel_dispatches);
  dispatch.Set("fused_macs", kernels.fused_macs);
  doc.Set("kernels", std::move(dispatch));
  doc.Set("kernel_tuning",
          nn::kernels::TuningProfileJson(nn::kernels::GetTuningProfile()));

  obs::Json pool = obs::Json::Object();
  const int workers = obs::PoolWorkers();
  const int busy = obs::BusyWorkers();
  pool.Set("workers", workers);
  pool.Set("busy", busy);
  pool.Set("utilization",
           workers > 0 ? static_cast<double>(busy) / workers : 0.0);
  doc.Set("threadpool", std::move(pool));

  const obs::BuildInfo& build = obs::GetBuildInfo();
  obs::Json build_json = obs::Json::Object();
  build_json.Set("version", build.version);
  build_json.Set("compiler", build.compiler);
  build_json.Set("build_type", build.build_type);
  build_json.Set("kernel_native", build.kernel_native);
  doc.Set("build", std::move(build_json));
  doc.Set("uptime_seconds", obs::ProcessUptimeSeconds());
  doc.Set("profile_active", obs::CpuProfileActive());
  return doc;
}

void RegisterIntrospectionEndpoints(obs::HttpServer* server) {
  server->Handle("/metrics", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = obs::kPrometheusContentType;
    response.body = obs::PrometheusTextFromGlobals();
    return response;
  });

  server->Handle("/statusz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson().Dump();
    response.body.push_back('\n');
    return response;
  });

  server->Handle("/healthz", [](const obs::HttpRequest&) {
    const StatusSnapshot snap = TrainStatus::Global().Snapshot();
    obs::HttpResponse response;
    if (snap.health_gave_up) {
      response.status = 503;
      response.body = "unhealthy: numerical-health guardrail gave up after ";
      response.body += std::to_string(snap.health_rollbacks);
      response.body += " rollback(s)\n";
    } else {
      response.body = "ok (skipped_batches=";
      response.body += std::to_string(snap.health_skipped_batches);
      response.body += ", rollbacks=";
      response.body += std::to_string(snap.health_rollbacks);
      response.body += ")\n";
    }
    return response;
  });

  server->Handle("/readyz", [](const obs::HttpRequest&) {
    const StatusSnapshot snap = TrainStatus::Global().Snapshot();
    // Ready = the model exists and is being (or has been) trained: phases
    // pretrain onward, with the guardrail not given up. Idle/embed/failed
    // report 503 so an orchestrator holds traffic.
    const bool ready = !snap.health_gave_up &&
                       snap.phase >= FitPhase::kPretrain &&
                       snap.phase <= FitPhase::kDone;
    obs::HttpResponse response;
    if (!ready) {
      response.status = 503;
      response.body = std::string("not ready (phase=") +
                      FitPhaseName(snap.phase) + ")\n";
    } else {
      response.body = std::string("ready (phase=") +
                      FitPhaseName(snap.phase) + ")\n";
    }
    return response;
  });

  server->Handle("/profilez", [](const obs::HttpRequest& request) {
    const double seconds = request.ParamOr("seconds", 1.0);
    const int hz = static_cast<int>(request.ParamOr("hz", 99.0));
    obs::HttpResponse response;
    std::string error;
    // The handler thread blocks for the profile window; the server's other
    // handler threads keep /metrics and friends responsive meanwhile.
    if (!obs::CollectCpuProfile(seconds, hz, &response.body, &error)) {
      response.status = 503;
      response.body = "profile unavailable: " + error + "\n";
    }
    return response;
  });

  server->Handle("/", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body =
        "e2dtc introspection plane\n"
        "  /metrics            Prometheus text exposition\n"
        "  /statusz            training status JSON\n"
        "  /healthz            numerical-health liveness\n"
        "  /readyz             readiness (model trained/training)\n"
        "  /profilez?seconds=N sampling CPU profile (collapsed stacks)\n";
    return response;
  });
}

}  // namespace e2dtc::core
