#include "core/self_training.h"

#include <algorithm>

#include <cmath>
#include <cstdio>

#include "core/health.h"
#include "core/pretrain.h"
#include "core/resume.h"
#include "core/status.h"
#include "core/train_telemetry.h"
#include "core/triplet.h"
#include "data/batching.h"
#include "nn/kernels.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace e2dtc::core {

namespace {

/// Telemetry series for the self-training loop, one sample per epoch
/// (step = epoch index). The per-cluster size series are resolved lazily in
/// Train() because k is a runtime value.
struct SelfTrainTelemetry {
  explicit SelfTrainTelemetry(int k) {
    obs::TimeSeriesRecorder& rec = obs::TimeSeriesRecorder::Global();
    cluster_sizes.reserve(static_cast<size_t>(k));
    for (int j = 0; j < k; ++j) {
      char name[48];
      std::snprintf(name, sizeof(name), "selftrain.cluster_size.%02d", j);
      cluster_sizes.push_back(rec.series(name));
    }
  }

  obs::TimeSeriesRecorder& rec = obs::TimeSeriesRecorder::Global();
  obs::Series loss_recon = rec.series("selftrain.loss.recon");
  obs::Series loss_kl = rec.series("selftrain.loss.kl");
  obs::Series loss_triplet = rec.series("selftrain.loss.triplet");
  obs::Series loss_joint = rec.series("selftrain.loss.joint");
  obs::Series delta = rec.series("selftrain.delta");
  obs::Series entropy = rec.series("selftrain.entropy");
  obs::Series centroid_drift = rec.series("selftrain.centroid_drift");
  obs::Series epoch_seconds = rec.series("selftrain.epoch_seconds");
  obs::Series gemm_macs = rec.series("selftrain.gemm_macs");
  obs::Series gemm_gflops = rec.series("selftrain.gemm_gflops");
  obs::Series gemm_dispatches = rec.series("selftrain.gemm_dispatches");
  obs::Series fused_macs = rec.series("selftrain.fused_macs");
  obs::Series fused_gflops = rec.series("selftrain.fused_gflops");
  obs::Series fused_dispatches = rec.series("selftrain.fused_dispatches");
  std::vector<obs::Series> cluster_sizes;
};

/// Mean Shannon entropy (nats) of the soft-assignment rows of Q (Eq. 9):
/// high entropy = diffuse assignments, approaching 0 as clusters sharpen —
/// the self-training signal the target distribution P amplifies.
double MeanRowEntropy(const nn::Tensor& q) {
  double total = 0.0;
  for (int i = 0; i < q.rows(); ++i) {
    const float* row = q.row(i);
    double h = 0.0;
    for (int j = 0; j < q.cols(); ++j) {
      const double p = static_cast<double>(row[j]);
      if (p > 0.0) h -= p * std::log(p);
    }
    total += h;
  }
  return q.rows() > 0 ? total / q.rows() : 0.0;
}

/// L2 norm of the centroid movement between consecutive epochs.
double CentroidDrift(const nn::Tensor& prev, const nn::Tensor& cur) {
  double sq = 0.0;
  const float* a = prev.data();
  const float* b = cur.data();
  const int64_t n = static_cast<int64_t>(prev.rows()) * prev.cols();
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(b[i]) - static_cast<double>(a[i]);
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace

std::vector<int> HardAssignments(const nn::Tensor& q) {
  std::vector<int> out(static_cast<size_t>(q.rows()));
  for (int i = 0; i < q.rows(); ++i) {
    const float* row = q.row(i);
    int best = 0;
    for (int j = 1; j < q.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double ChangedFraction(const std::vector<int>& a, const std::vector<int>& b) {
  E2DTC_CHECK_EQ(a.size(), b.size());
  E2DTC_CHECK(!a.empty());
  int changed = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(a.size());
}

SelfTrainer::SelfTrainer(Seq2SeqModel* model, const geo::Vocabulary* vocab,
                         const geo::Vocabulary::KnnTable* knn,
                         const SelfTrainConfig& config,
                         ThreadPool* encode_pool)
    : model_(model),
      vocab_(vocab),
      knn_(knn),
      config_(config),
      encode_pool_(encode_pool) {
  E2DTC_CHECK(model != nullptr && vocab != nullptr && knn != nullptr);
  E2DTC_CHECK(config.loss_mode != LossMode::kL0);
}

Result<SelfTrainer::TrainResult> SelfTrainer::Train(
    const std::vector<geo::Trajectory>& trajectories,
    const nn::Tensor& initial_centroids) {
  E2DTC_TRACE_SPAN("selftrain.train");
  const bool collapse = model_->config().collapse_consecutive;
  const int n = static_cast<int>(trajectories.size());
  const int k = initial_centroids.rows();
  E2DTC_CHECK_GT(n, 0);
  E2DTC_CHECK_EQ(initial_centroids.cols(), model_->hidden_size());
  const bool use_triplet = config_.loss_mode == LossMode::kL2;

  std::vector<std::vector<int>> seqs(static_cast<size_t>(n));
  std::vector<int> lengths(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    seqs[static_cast<size_t>(i)] =
        vocab_->Encode(trajectories[static_cast<size_t>(i)], collapse);
    if (seqs[static_cast<size_t>(i)].empty()) {
      seqs[static_cast<size_t>(i)].push_back(geo::Vocabulary::kUnk);
    }
    lengths[static_cast<size_t>(i)] =
        static_cast<int>(seqs[static_cast<size_t>(i)].size());
  }

  // Centroids become trainable parameters alongside theta (Section V-D iii).
  nn::Var centroids =
      nn::Var::Leaf(initial_centroids, /*requires_grad=*/true, "centroids");
  std::vector<nn::Var> params = model_->TrainableParameters();
  params.push_back(centroids);
  std::unique_ptr<nn::Optimizer> optimizer = MakeOptimizer(
      std::move(params), config_.optimizer, config_.lr, config_.momentum);
  InstallGradTelemetry(optimizer.get(), *model_, "selftrain");
  SelfTrainTelemetry telemetry(k);
  // Previous epoch's centroids, kept only while telemetry is live (the
  // drift series needs a [k, H] copy per epoch).
  nn::Tensor prev_centroids;

  Rng rng(config_.seed);
  const auto& drops = geo::AugmentConfig{}.drop_rates;
  const auto& distorts = geo::AugmentConfig{}.distort_rates;

  TrainResult result;
  std::vector<int> prev_assignments;
  HealthMonitor health(config_.health);
  ckpt::Checkpointer* ckptr =
      config_.checkpointer != nullptr && config_.checkpointer->enabled()
          ? config_.checkpointer
          : nullptr;

  int start_epoch = 0;
  if (config_.resume != nullptr &&
      config_.resume->phase == ckpt::TrainPhase::kSelfTrain) {
    const ckpt::PhaseSnapshot& snap = *config_.resume;
    if (!snap.centroids.SameShape(initial_centroids)) {
      return Status::InvalidArgument(
          "snapshot centroids do not match this run's cluster count");
    }
    E2DTC_RETURN_IF_ERROR(
        ApplyTrainingState(snap, model_, optimizer.get(), &rng));
    centroids.mutable_value() = snap.centroids;
    prev_assignments.assign(snap.prev_assignments.begin(),
                            snap.prev_assignments.end());
    result.history = SelfTrainHistoryFromRows(snap.self_train_stats);
    start_epoch = snap.epochs_done;
    result.resumed = true;
    E2DTC_LOG(Info) << "self-training resumed at epoch " << start_epoch;
  }
  TrainStatus& status = TrainStatus::Global();
  status.EnterPhase(FitPhase::kSelfTrain, config_.max_iters, start_epoch);

  // Last completed epoch boundary: disk-checkpoint source and health
  // rollback target. See the matching comment in pretrain.cc — mid-epoch
  // state is never captured, which is what keeps resumes bitwise identical.
  const bool track_boundary = config_.health.enabled || ckptr != nullptr ||
                              config_.cancel != nullptr;
  ckpt::PhaseSnapshot boundary;
  auto capture_boundary = [&](int epochs_done) {
    boundary.phase = ckpt::TrainPhase::kSelfTrain;
    boundary.epochs_done = epochs_done;
    CaptureTrainingState(*model_, *optimizer, rng, &boundary);
    boundary.centroids = centroids.value();
    boundary.prev_assignments.assign(prev_assignments.begin(),
                                     prev_assignments.end());
    boundary.k = k;
    boundary.self_train_stats = SelfTrainRows(result.history);
    // Pipeline context so a kSelfTrain snapshot is self-contained: a
    // resumed run skips phases 1-2 and k-means entirely.
    if (config_.ckpt_l0_embeddings != nullptr) {
      boundary.l0_embeddings = *config_.ckpt_l0_embeddings;
    }
    if (config_.ckpt_l0_assignments != nullptr) {
      boundary.l0_assignments.assign(config_.ckpt_l0_assignments->begin(),
                                     config_.ckpt_l0_assignments->end());
    }
    if (config_.ckpt_pretrain_stats != nullptr) {
      boundary.pretrain_stats = *config_.ckpt_pretrain_stats;
    }
  };
  if (track_boundary) capture_boundary(start_epoch);

  auto cancelled = [&] {
    return config_.cancel != nullptr &&
           config_.cancel->load(std::memory_order_relaxed);
  };
  auto cancel_out = [&]() -> Status {
    if (ckptr != nullptr) {
      Status st = ckptr->Save(boundary);
      if (!st.ok()) {
        E2DTC_LOG(Warning) << "final checkpoint failed: " << st.ToString();
      } else {
        status.OnCheckpoint(ckptr->last_saved_path());
      }
    }
    return Status::Cancelled(StrFormat(
        "self-training cancelled after %d completed epoch(s)",
        boundary.epochs_done));
  };

  for (int epoch = start_epoch; epoch < config_.max_iters; ++epoch) {
    E2DTC_TRACE_SPAN("selftrain.epoch");
    if (cancelled()) return cancel_out();
    Stopwatch watch;
    const nn::kernels::DispatchStats gemm_start =
        nn::kernels::GetDispatchStats();
    // Lines 4-7: refresh embeddings, Q, target P, and hard assignments.
    nn::Tensor embeddings;
    nn::Tensor q, p;
    std::vector<int> assignments;
    {
      E2DTC_TRACE_SPAN("selftrain.refresh");
      embeddings = EncodeAll(*model_, *vocab_, trajectories,
                             config_.batch_size, collapse, encode_pool_);
      q = nn::StudentTAssignmentValue(embeddings, centroids.value());
      p = nn::TargetDistribution(q);
      assignments = HardAssignments(q);
    }
    if (config_.epoch_observer) config_.epoch_observer(epoch, assignments);

    if (obs::TelemetryEnabled()) {
      telemetry.entropy.Record(epoch, MeanRowEntropy(q));
      std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
      for (int a : assignments) ++sizes[static_cast<size_t>(a)];
      for (int j = 0; j < k; ++j) {
        telemetry.cluster_sizes[static_cast<size_t>(j)].Record(
            epoch, static_cast<double>(sizes[static_cast<size_t>(j)]));
      }
      if (prev_centroids.SameShape(centroids.value())) {
        telemetry.centroid_drift.Record(
            epoch, CentroidDrift(prev_centroids, centroids.value()));
      }
      prev_centroids = centroids.value();
    }

    EpochStats stats;
    stats.epoch = epoch;
    // Lines 8-9: delta stopping criterion on changed assignments.
    if (!prev_assignments.empty()) {
      stats.changed_fraction = ChangedFraction(assignments,
                                               prev_assignments);
      instr_.changed_fraction.Set(stats.changed_fraction);
      telemetry.delta.Record(epoch, stats.changed_fraction);
      if (stats.changed_fraction <= config_.delta) {
        result.converged = true;
        result.assignments = std::move(assignments);
        result.embeddings = std::move(embeddings);
        stats.seconds = watch.ElapsedSeconds();
        result.history.push_back(stats);
        if (config_.epoch_callback) config_.epoch_callback(stats);
        break;
      }
    }
    prev_assignments = assignments;

    // Line 10: one epoch of joint updates of theta and C.
    std::vector<std::vector<int>> batches = data::MakeBatchIndices(
        lengths, config_.batch_size, /*bucket_by_length=*/true, &rng);
    double recon_sum = 0.0, cluster_sum = 0.0, triplet_sum = 0.0;
    int64_t token_sum = 0;
    int64_t sample_sum = 0;
    int batch_count = 0;
    bool rollback_requested = false;
    for (const auto& batch_indices : batches) {
      E2DTC_TRACE_SPAN("selftrain.batch");
      if (cancelled()) return cancel_out();
      Stopwatch batch_watch;
      const int b = static_cast<int>(batch_indices.size());
      if (b < 2) continue;  // triplet/negative sampling needs pairs
      optimizer->ZeroGrad();

      data::PaddedBatch anchor_batch =
          data::PadSequences(seqs, batch_indices, geo::Vocabulary::kPad);

      // Corrupted positives (and reconstruction sources).
      std::vector<std::vector<int>> pos_seqs;
      pos_seqs.reserve(batch_indices.size());
      for (int idx : batch_indices) {
        const double r1 = drops[rng.UniformU64(drops.size())];
        const double r2 = distorts[rng.UniformU64(distorts.size())];
        geo::Trajectory corrupted = geo::Corrupt(
            trajectories[static_cast<size_t>(idx)], r1, r2,
            geo::AugmentConfig{}.noise_sigma_meters, &rng);
        std::vector<int> src = vocab_->Encode(corrupted, collapse);
        if (src.empty()) src.push_back(geo::Vocabulary::kUnk);
        pos_seqs.push_back(std::move(src));
      }
      std::vector<int> pos_indices(static_cast<size_t>(b));
      for (int i = 0; i < b; ++i) pos_indices[static_cast<size_t>(i)] = i;
      data::PaddedBatch pos_batch =
          data::PadSequences(pos_seqs, pos_indices, geo::Vocabulary::kPad);

      // Anchor embeddings v_a (original trajectories).
      Seq2SeqModel::EncodeResult anchor_enc =
          model_->Encode(anchor_batch, /*train=*/true, &rng);
      nn::Var v_anchor = anchor_enc.embedding;

      // Corrupted encoding: reconstruction source and triplet positive.
      Seq2SeqModel::EncodeResult pos_enc =
          model_->Encode(pos_batch, /*train=*/true, &rng);
      nn::Var v_pos = pos_enc.embedding;

      // L_r: reconstruct the original from the corrupted encoding (Eq. 8).
      Seq2SeqModel::DecodeResult dec = model_->DecodeLoss(
          pos_enc.state, anchor_batch, *knn_, /*train=*/true, &rng);
      nn::Var loss = nn::MulScalar(
          dec.loss_sum, 1.0f / static_cast<float>(dec.num_tokens));

      // L_c: KL(P || Q) on this batch's rows (Eqs. 9-11).
      nn::Var q_batch = nn::StudentTAssignment(v_anchor, centroids);
      nn::Tensor p_batch(b, k);
      for (int i = 0; i < b; ++i) {
        std::copy(p.row(batch_indices[static_cast<size_t>(i)]),
                  p.row(batch_indices[static_cast<size_t>(i)]) + k,
                  p_batch.row(i));
      }
      nn::Var kl = nn::KlDivergence(p_batch, q_batch);
      loss = nn::Add(loss, nn::MulScalar(
                               kl, config_.beta / static_cast<float>(b)));

      // L_t: anchor vs corrupted-positive vs in-batch negative (Eq. 13).
      nn::Var triplet;
      if (use_triplet) {
        std::vector<int> batch_assign(static_cast<size_t>(b));
        for (int i = 0; i < b; ++i) {
          batch_assign[static_cast<size_t>(i)] = prev_assignments
              [static_cast<size_t>(batch_indices[static_cast<size_t>(i)])];
        }
        std::vector<int> neg_rows = SampleNegativeRows(batch_assign, &rng);
        nn::Var v_neg = nn::GatherRows(v_anchor, neg_rows);
        triplet = nn::TripletLoss(v_anchor, v_pos, v_neg,
                                  config_.triplet_margin);
        loss = nn::Add(loss, nn::MulScalar(triplet, config_.gamma));
      }

      nn::Backward(loss);
      stats.grad_norm = optimizer->ClipGradNorm(config_.grad_clip);

      const double batch_loss = static_cast<double>(loss.value().scalar());
      const HealthMonitor::Verdict verdict =
          health.Check(batch_loss, stats.grad_norm);
      if (verdict == HealthMonitor::Verdict::kRollback) {
        rollback_requested = true;
        break;
      }
      if (verdict == HealthMonitor::Verdict::kSkipBatch) {
        ++stats.skipped_batches;
        continue;
      }
      optimizer->Step();
      status.OnBatch();

      recon_sum += static_cast<double>(dec.loss_sum.value().scalar());
      token_sum += dec.num_tokens;
      cluster_sum += static_cast<double>(kl.value().scalar());
      sample_sum += b;
      if (use_triplet) {
        triplet_sum += static_cast<double>(triplet.value().scalar());
      }
      ++batch_count;
      instr_.batches.Increment();
      instr_.tokens.Increment(static_cast<uint64_t>(dec.num_tokens));
      instr_.batch_ms.Record(batch_watch.ElapsedMillis());
    }
    if (rollback_requested) {
      if (health.rollbacks() >= config_.health.max_rollbacks) {
        status.OnGiveUp();
        return Status::Internal(StrFormat(
            "self-training keeps producing poisoned batches after %d "
            "rollback(s); giving up at epoch %d",
            health.rollbacks(), epoch));
      }
      health.OnRollback();
      status.SetHealth(health.skipped_batches(), health.rollbacks());
      E2DTC_RETURN_IF_ERROR(
          ApplyTrainingState(boundary, model_, optimizer.get(), &rng));
      centroids.mutable_value() = boundary.centroids;
      prev_assignments.assign(boundary.prev_assignments.begin(),
                              boundary.prev_assignments.end());
      result.history = SelfTrainHistoryFromRows(boundary.self_train_stats);
      optimizer->set_lr(optimizer->lr() * config_.health.rollback_lr_scale);
      E2DTC_LOG(Warning) << "self-training rolled back to epoch boundary "
                         << boundary.epochs_done << " with lr "
                         << optimizer->lr();
      epoch = boundary.epochs_done - 1;  // the loop's ++ re-enters there
      continue;
    }
    stats.recon_loss =
        token_sum > 0 ? recon_sum / static_cast<double>(token_sum) : 0.0;
    stats.cluster_loss =
        sample_sum > 0 ? cluster_sum / static_cast<double>(sample_sum) : 0.0;
    stats.triplet_loss =
        batch_count > 0 ? triplet_sum / batch_count : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    // Loss decomposition (Eq. 14): joint = L_r + beta * L_c + gamma * L_t,
    // matching the per-batch objective's weighting exactly (L_c there is
    // beta/b * KL-sum == beta * per-sample KL).
    telemetry.loss_recon.Record(epoch, stats.recon_loss);
    telemetry.loss_kl.Record(epoch, stats.cluster_loss);
    telemetry.loss_triplet.Record(epoch, stats.triplet_loss);
    telemetry.loss_joint.Record(
        epoch, stats.recon_loss +
                   static_cast<double>(config_.beta) * stats.cluster_loss +
                   (use_triplet ? static_cast<double>(config_.gamma) *
                                      stats.triplet_loss
                                : 0.0));
    telemetry.epoch_seconds.Record(epoch, stats.seconds);
    {
      const nn::kernels::DispatchStats gemm_end =
          nn::kernels::GetDispatchStats();
      const double macs =
          static_cast<double>(gemm_end.macs - gemm_start.macs);
      telemetry.gemm_macs.Record(epoch, macs);
      telemetry.gemm_dispatches.Record(
          epoch,
          static_cast<double>(gemm_end.dispatches - gemm_start.dispatches));
      telemetry.gemm_gflops.Record(
          epoch, stats.seconds > 0.0 ? 2.0 * macs / stats.seconds / 1e9 : 0.0);
      // Loss-path compute (fused softmax/KNN kernels), historically
      // invisible to the per-phase GEMM accounting.
      const double fmacs =
          static_cast<double>(gemm_end.fused_macs - gemm_start.fused_macs);
      telemetry.fused_macs.Record(epoch, fmacs);
      telemetry.fused_dispatches.Record(
          epoch, static_cast<double>(gemm_end.fused_dispatches -
                                     gemm_start.fused_dispatches));
      telemetry.fused_gflops.Record(
          epoch,
          stats.seconds > 0.0 ? 2.0 * fmacs / stats.seconds / 1e9 : 0.0);
    }
    E2DTC_LOG(Debug) << "self-train epoch " << epoch << " Lr "
                     << stats.recon_loss << " Lc " << stats.cluster_loss
                     << " Lt " << stats.triplet_loss << " changed "
                     << stats.changed_fraction;
    result.history.push_back(stats);
    status.OnEpochEnd(
        epoch + 1, stats.recon_loss, stats.cluster_loss, stats.triplet_loss,
        stats.recon_loss +
            static_cast<double>(config_.beta) * stats.cluster_loss +
            (use_triplet
                 ? static_cast<double>(config_.gamma) * stats.triplet_loss
                 : 0.0),
        stats.grad_norm, stats.seconds);
    status.SetHealth(health.skipped_batches(), health.rollbacks());

    if (track_boundary) capture_boundary(epoch + 1);
    if (ckptr != nullptr &&
        ckptr->ShouldSave(epoch + 1, epoch + 1 == config_.max_iters)) {
      Status st = ckptr->Save(boundary);
      if (!st.ok()) {
        E2DTC_LOG(Warning) << "checkpoint save failed (training continues): "
                           << st.ToString();
      } else {
        status.OnCheckpoint(ckptr->last_saved_path());
      }
    }
    // After the boundary capture, so state a callback corrupts (tests use
    // this as a fault-injection point) is recoverable by rollback.
    if (config_.epoch_callback) config_.epoch_callback(stats);
  }

  // Final state (also reached when max_iters ran out without convergence).
  if (result.assignments.empty()) {
    result.embeddings = EncodeAll(*model_, *vocab_, trajectories,
                                  config_.batch_size, collapse,
                                  encode_pool_);
    nn::Tensor q = nn::StudentTAssignmentValue(result.embeddings,
                                               centroids.value());
    result.assignments = HardAssignments(q);
  }
  result.centroids = centroids.value();
  result.skipped_batches = health.skipped_batches();
  result.rollbacks = health.rollbacks();
  return result;
}

}  // namespace e2dtc::core
