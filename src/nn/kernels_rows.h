#ifndef E2DTC_NN_KERNELS_ROWS_H_
#define E2DTC_NN_KERNELS_ROWS_H_

/// Scalar per-row primitives for the fused softmax / KNN-loss kernels.
///
/// These loops are exp/log-bound: every element goes through a libm call,
/// so the wide vector ISA the rest of nn/kernels.cc is compiled for cannot
/// help them — and in practice hurts. On AVX-512 hosts, compiling these
/// transcendental loops under -march=native costs a measurable constant
/// factor (~15% on the softmax forward at [1024 x 512]) versus the portable
/// baseline, likely from the wider codegen around the out-of-line expf
/// calls. They therefore live in their own TU (kernels_rows.cc) built with
/// the library's portable flags, which also keeps their codegen identical
/// to the scalar TU loops they replaced. The operation-order contracts that
/// make the fused kernels bitwise-equal to the retired scalar paths are
/// documented on each definition.
namespace e2dtc::nn::kernels::detail {

/// One row of softmax forward; identical operation order to the scalar
/// loop this kernel replaced (max-subtraction, exp stored as float then
/// accumulated into a double denominator in ascending column order,
/// reciprocal applied as one float).
void SoftmaxRow(const float* r, float* o, int cols);

/// One row of softmax backward (dx += softmax_jacobian^T * g), double dot
/// accumulated in ascending column order then applied as one float.
void SoftmaxBackwardRow(const float* y, const float* g, float* d, int cols);

/// Per-sample softmax + loss partial over precomputed logits. Operation
/// order matches the scalar KnnProximityLoss loop exactly; the loss
/// contribution is returned as a per-sample double partial instead of
/// being folded into a running global sum, so the total is independent of
/// the parallel partition (callers sum partials serially in ascending
/// sample order).
double KnnSampleSoftmax(const float* logits, const float* wrow_weights,
                        int k, float* probs_row);

}  // namespace e2dtc::nn::kernels::detail

#endif  // E2DTC_NN_KERNELS_ROWS_H_
