#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/kernels_rows.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace e2dtc::nn::kernels {

namespace {

/// The one multiply-accumulate every kernel and reference loop uses.
/// Contraction must be pinned in source: left to -ffp-contract=fast the
/// compiler fuses s += x*y into an FMA in some loops and not others
/// (vectorized tile vs scalar reference), and the 1-2 ulp rounding
/// difference breaks the bit-for-bit kernel==reference contract. With
/// hardware FMA (this TU builds with -march=native by default) std::fma
/// is a single instruction scalar or vectorized; without it, explicit
/// mul-then-add is the only rounding the ISA can do anyway.
inline float MulAdd(float x, float y, float s) {
#ifdef __FMA__
  return std::fma(x, y, s);
#else
  return s + x * y;
#endif
}

/// Metric-name catalog for the kernel layer, resolved once per process.
struct Instruments {
  obs::Counter gemm_macs = obs::Registry::Global().counter("nn.gemm.macs");
  obs::Counter gemm_parallel =
      obs::Registry::Global().counter("nn.gemm.parallel_dispatches");
  obs::Counter fused_macs = obs::Registry::Global().counter("nn.fused.macs");
  obs::Counter fused_parallel =
      obs::Registry::Global().counter("nn.fused.parallel_dispatches");
};

Instruments& Instr() {
  static Instruments* instr = new Instruments();
  return *instr;
}

/// Always-on tallies behind GetDispatchStats(). Separate from the gated obs
/// counters above so epoch-boundary telemetry works without the metrics
/// switch; bumped only on the kernel entry paths (once per call), never per
/// panel, so there is no cross-thread contention.
std::atomic<uint64_t> g_dispatches{0};
std::atomic<uint64_t> g_parallel_dispatches{0};
std::atomic<uint64_t> g_macs{0};
std::atomic<uint64_t> g_fused_dispatches{0};
std::atomic<uint64_t> g_fused_parallel_dispatches{0};
std::atomic<uint64_t> g_fused_macs{0};

// ---- Dispatch tuning ----------------------------------------------------
//
// The hot path reads the per-class parameters lock-free; like
// SetNumThreads, SetTuningProfile must not race with in-flight kernel
// calls (both are startup/test-setup configuration). The provenance
// metadata lives separately under the pool mutex so the POD array stays
// trivially readable.

ShapeParams g_shape_params[kNumShapeClasses];
std::string* g_profile_provenance = new std::string("default");
double g_profile_probe_ms = 0.0;
int g_profile_probed_threads = 0;

const ShapeParams& ParamsFor(int64_t macs) {
  return g_shape_params[static_cast<int>(ClassifyShape(macs))];
}

// ---- Threading ----------------------------------------------------------
//
// One process-wide pool, created lazily on the first matmul big enough to
// split. SetNumThreads must not race with in-flight kernel calls (callers
// configure threading at startup / test setup, not mid-training).

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = hardware concurrency
int g_pool_threads = -1;      // what g_pool was built with

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

/// Pool to split `macs` multiply-accumulates over, or nullptr for the
/// serial path. Never splits from inside a pool worker: the encode pool
/// runs whole forward passes per task, and nesting parallel regions would
/// only oversubscribe (results are identical either way — see contract).
ThreadPool* PoolFor(int64_t macs, int64_t tasks, int64_t min_macs) {
  if (macs < min_macs || tasks < 2) return nullptr;
  if (ThreadPool::OnWorkerThread()) return nullptr;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int want = ResolveThreads(g_requested_threads);
  if (want <= 1) return nullptr;
  if (g_pool == nullptr || g_pool_threads != want) {
    g_pool.reset();
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_threads = want;
  }
  return g_pool.get();
}

// ---- GEMM core ----------------------------------------------------------
//
// One NN kernel does all the work; the TN/NT variants transpose their
// strided operand into thread-local scratch first (an exact copy, so the
// accumulation contract is unchanged). The tiled panel below computes each
// output element as float partial sums over kBlockK-long k-runs in
// ascending order, widened to double across runs — bitwise identical to
// ReferenceMatmulNN for every shape, tile configuration, and thread count.

/// One MR-row panel of C: c[i0..i0+MR) (+)= a[i0..i0+MR) * b.
template <int MR>
void PanelNN(int i0, int k, int m, const float* __restrict a,
             const float* __restrict b, float* __restrict c,
             bool accumulate) {
  constexpr int NR = kColPanel;
  const float* arow[MR];
  for (int r = 0; r < MR; ++r) arow[r] = a + static_cast<size_t>(i0 + r) * k;

  int j0 = 0;
  for (; j0 + NR <= m; j0 += NR) {
    // Register tile: MR x NR float accumulators per k-block, MR x NR double
    // accumulators across blocks. With MR=8, NR=32 the float tile is 16
    // AVX-512 registers; GCC keeps it enregistered at -O3.
    double dtile[MR][NR];
    for (int r = 0; r < MR; ++r) {
      for (int t = 0; t < NR; ++t) dtile[r][t] = 0.0;
    }
    for (int kb = 0; kb < k; kb += kBlockK) {
      const int ke = std::min(k, kb + kBlockK);
      float acc[MR][NR];
      for (int r = 0; r < MR; ++r) {
        for (int t = 0; t < NR; ++t) acc[r][t] = 0.0f;
      }
      for (int kk = kb; kk < ke; ++kk) {
        const float* __restrict brow = b + static_cast<size_t>(kk) * m + j0;
        for (int r = 0; r < MR; ++r) {
          const float ar = arow[r][kk];
          for (int t = 0; t < NR; ++t) acc[r][t] = MulAdd(ar, brow[t], acc[r][t]);
        }
      }
      for (int r = 0; r < MR; ++r) {
        for (int t = 0; t < NR; ++t) dtile[r][t] += static_cast<double>(acc[r][t]);
      }
    }
    for (int r = 0; r < MR; ++r) {
      float* __restrict crow = c + static_cast<size_t>(i0 + r) * m + j0;
      if (accumulate) {
        for (int t = 0; t < NR; ++t) crow[t] += static_cast<float>(dtile[r][t]);
      } else {
        for (int t = 0; t < NR; ++t) crow[t] = static_cast<float>(dtile[r][t]);
      }
    }
  }
  // Column remainder (m % NR): scalar, same block structure and k order.
  for (; j0 < m; ++j0) {
    for (int r = 0; r < MR; ++r) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(arow[r][kk], b[static_cast<size_t>(kk) * m + j0], s);
        }
        d += static_cast<double>(s);
      }
      float* cell = c + static_cast<size_t>(i0 + r) * m + j0;
      *cell = accumulate ? *cell + static_cast<float>(d)
                         : static_cast<float>(d);
    }
  }
}

/// Rows [i0, i0+rows): full kRowPanel tiles, then narrowing remainder tiles.
void RowRangeNN(int i0, int rows, int k, int m, const float* a, const float* b,
                float* c, bool accumulate) {
  int i = i0;
  for (; i + kRowPanel <= i0 + rows; i += kRowPanel) {
    PanelNN<kRowPanel>(i, k, m, a, b, c, accumulate);
  }
  const int rem = i0 + rows - i;
  if (rem >= 4) {
    PanelNN<4>(i, k, m, a, b, c, accumulate);
    i += 4;
  }
  if (i0 + rows - i >= 2) {
    PanelNN<2>(i, k, m, a, b, c, accumulate);
    i += 2;
  }
  if (i0 + rows - i == 1) PanelNN<1>(i, k, m, a, b, c, accumulate);
}

void GemmNN(int n, int k, int m, const float* a, const float* b, float* c,
            bool accumulate) {
  if (n <= 0 || m <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      std::memset(c, 0, sizeof(float) * static_cast<size_t>(n) * m);
    }
    return;
  }
  const int64_t macs = int64_t{n} * k * m;
  g_dispatches.fetch_add(1, std::memory_order_relaxed);
  g_macs.fetch_add(static_cast<uint64_t>(macs), std::memory_order_relaxed);
  Instr().gemm_macs.Increment(static_cast<uint64_t>(macs));
  const ShapeParams& sp = ParamsFor(macs);
  const int rpt = sp.rows_per_task;
  const int64_t tasks = (n + rpt - 1) / rpt;
  ThreadPool* pool = PoolFor(macs, tasks, sp.parallel_min_macs);
  if (pool == nullptr) {
    RowRangeNN(0, n, k, m, a, b, c, accumulate);
    return;
  }
  g_parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
  Instr().gemm_parallel.Increment();
  // Task t always owns rows [t*rpt, ...): the partition is a pure function
  // of n and the installed profile, and rpt is a multiple of kRowPanel, so
  // task boundaries coincide with register-tile boundaries and per-element
  // accumulation order never depends on the worker count, chunk
  // assignment, or tuned grouping (see the contract in kernels.h).
  pool->ParallelForRange(
      tasks,
      [&](int64_t t0, int64_t t1) {
        const int begin = static_cast<int>(t0) * rpt;
        const int rows =
            static_cast<int>(std::min<int64_t>(t1 * rpt, n)) - begin;
        RowRangeNN(begin, rows, k, m, a, b, c, accumulate);
      },
      sp.oversplit);
}

/// Thread-local transpose scratch, reused across calls (backward passes
/// transpose a weight or activation every matmul node).
std::vector<float>& TransposeScratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

}  // namespace

DispatchStats GetDispatchStats() {
  DispatchStats stats;
  stats.dispatches = g_dispatches.load(std::memory_order_relaxed);
  stats.parallel_dispatches =
      g_parallel_dispatches.load(std::memory_order_relaxed);
  stats.macs = g_macs.load(std::memory_order_relaxed);
  stats.fused_dispatches = g_fused_dispatches.load(std::memory_order_relaxed);
  stats.fused_parallel_dispatches =
      g_fused_parallel_dispatches.load(std::memory_order_relaxed);
  stats.fused_macs = g_fused_macs.load(std::memory_order_relaxed);
  return stats;
}

ShapeClass ClassifyShape(int64_t macs) {
  if (macs < kSmallClassMaxMacs) return ShapeClass::kSmall;
  if (macs < kMediumClassMaxMacs) return ShapeClass::kMedium;
  return ShapeClass::kLarge;
}

const char* ShapeClassName(ShapeClass c) {
  switch (c) {
    case ShapeClass::kSmall:
      return "small";
    case ShapeClass::kMedium:
      return "medium";
    case ShapeClass::kLarge:
      return "large";
  }
  return "unknown";
}

void SetTuningProfile(const TuningProfile& profile) {
  for (int i = 0; i < kNumShapeClasses; ++i) {
    const ShapeParams& p = profile.classes[i];
    E2DTC_CHECK_MSG(p.rows_per_task > 0 && p.rows_per_task % kRowPanel == 0,
                    "rows_per_task must be a positive multiple of kRowPanel");
    E2DTC_CHECK_GT(p.parallel_min_macs, 0);
    E2DTC_CHECK_GT(p.oversplit, 0);
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  for (int i = 0; i < kNumShapeClasses; ++i) {
    g_shape_params[i] = profile.classes[i];
  }
  *g_profile_provenance = profile.provenance;
  g_profile_probe_ms = profile.probe_ms;
  g_profile_probed_threads = profile.probed_threads;
}

TuningProfile GetTuningProfile() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  TuningProfile profile;
  for (int i = 0; i < kNumShapeClasses; ++i) {
    profile.classes[i] = g_shape_params[i];
  }
  profile.provenance = *g_profile_provenance;
  profile.probe_ms = g_profile_probe_ms;
  profile.probed_threads = g_profile_probed_threads;
  return profile;
}

void ResetTuningProfile() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  for (int i = 0; i < kNumShapeClasses; ++i) {
    g_shape_params[i] = ShapeParams{};
  }
  *g_profile_provenance = "default";
  g_profile_probe_ms = 0.0;
  g_profile_probed_threads = 0;
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = n < 0 ? 0 : n;
  // Rebuild lazily: drop the pool now so the next matmul sizes it right.
  g_pool.reset();
  g_pool_threads = -1;
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveThreads(g_requested_threads);
}

void MatmulNN(int n, int k, int m, const float* a, const float* b, float* c,
              bool accumulate) {
  GemmNN(n, k, m, a, b, c, accumulate);
}

void MatmulTN(int n, int k, int m, const float* a, const float* b, float* c) {
  // a is [k,n]; copy a^T into scratch so the k-loop is contiguous.
  std::vector<float>& at = TransposeScratch();
  at.resize(static_cast<size_t>(n) * k);
  Transpose(a, k, n, at.data());
  GemmNN(n, k, m, at.data(), b, c, /*accumulate=*/true);
}

void MatmulNT(int n, int k, int m, const float* a, const float* b, float* c) {
  // b is [m,k]; copy b^T into scratch so row-major NN streaming applies.
  std::vector<float>& bt = TransposeScratch();
  bt.resize(static_cast<size_t>(k) * m);
  Transpose(b, m, k, bt.data());
  GemmNN(n, k, m, a, bt.data(), c, /*accumulate=*/true);
}

void ReferenceMatmulNN(int n, int k, int m, const float* a, const float* b,
                       float* c, bool accumulate) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(i) * k + kk],
                     b[static_cast<size_t>(kk) * m + j], s);
        }
        d += static_cast<double>(s);
      }
      float* cell = c + static_cast<size_t>(i) * m + j;
      *cell = accumulate ? *cell + static_cast<float>(d)
                         : static_cast<float>(d);
    }
  }
}

void ReferenceMatmulTN(int n, int k, int m, const float* a, const float* b,
                       float* c) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(kk) * n + i],
                     b[static_cast<size_t>(kk) * m + j], s);
        }
        d += static_cast<double>(s);
      }
      c[static_cast<size_t>(i) * m + j] += static_cast<float>(d);
    }
  }
}

void ReferenceMatmulNT(int n, int k, int m, const float* a, const float* b,
                       float* c) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(i) * k + kk],
                     b[static_cast<size_t>(j) * k + kk], s);
        }
        d += static_cast<double>(s);
      }
      c[static_cast<size_t>(i) * m + j] += static_cast<float>(d);
    }
  }
}

void Transpose(const float* a, int rows, int cols, float* out) {
  constexpr int T = 32;  // 4 KiB tile pair: both footprints stay in L1.
  for (int i0 = 0; i0 < rows; i0 += T) {
    const int ie = std::min(rows, i0 + T);
    for (int j0 = 0; j0 < cols; j0 += T) {
      const int je = std::min(cols, j0 + T);
      for (int i = i0; i < ie; ++i) {
        const float* __restrict src = a + static_cast<size_t>(i) * cols;
        for (int j = j0; j < je; ++j) {
          out[static_cast<size_t>(j) * rows + i] = src[j];
        }
      }
    }
  }
}

double Dot(const float* a, const float* b, int64_t n) {
  double d = 0.0;
  for (int64_t kb = 0; kb < n; kb += kBlockK) {
    const int64_t ke = std::min<int64_t>(n, kb + kBlockK);
    float s = 0.0f;
    for (int64_t i = kb; i < ke; ++i) s = MulAdd(a[i], b[i], s);
    d += static_cast<double>(s);
  }
  return d;
}

double SquaredDistance(const float* a, const float* b, int64_t n) {
  double d = 0.0;
  for (int64_t kb = 0; kb < n; kb += kBlockK) {
    const int64_t ke = std::min<int64_t>(n, kb + kBlockK);
    float s = 0.0f;
    for (int64_t i = kb; i < ke; ++i) {
      const float diff = a[i] - b[i];
      s = MulAdd(diff, diff, s);
    }
    d += static_cast<double>(s);
  }
  return d;
}

void Axpy(float alpha, const float* __restrict x, float* __restrict y,
          int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddBiasRow(float* c, const float* __restrict bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* __restrict crow = c + static_cast<size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) crow[j] += bias[j];
  }
}

void ColumnSumAdd(const float* g, int rows, int cols, float* __restrict dst) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict grow = g + static_cast<size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) dst[j] += grow[j];
  }
}

void SigmoidForward(const float* __restrict x, float* __restrict y,
                    int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void SigmoidBackwardAdd(const float* __restrict y, const float* __restrict g,
                        float* __restrict dx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dx[i] += y[i] * (1.0f - y[i]) * g[i];
}

void TanhForward(const float* __restrict x, float* __restrict y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void TanhBackwardAdd(const float* __restrict y, const float* __restrict g,
                     float* __restrict dx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dx[i] += (1.0f - y[i] * y[i]) * g[i];
}

// ---- Fused softmax / loss kernels ---------------------------------------

namespace {

/// Work-cost multiplier for transcendental-heavy rows: one exp costs about
/// an order of magnitude more than one MAC, so the parallel-threshold
/// comparison scales elementwise softmax work up before consulting the
/// tuned MAC threshold. Stats still count raw MAC-equivalents.
constexpr int64_t kExpCostMacs = 8;

void FusedStatsBump(int64_t mac_equivalents) {
  g_fused_dispatches.fetch_add(1, std::memory_order_relaxed);
  g_fused_macs.fetch_add(static_cast<uint64_t>(mac_equivalents),
                         std::memory_order_relaxed);
  Instr().fused_macs.Increment(static_cast<uint64_t>(mac_equivalents));
}

void FusedParallelBump() {
  g_fused_parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
  Instr().fused_parallel.Increment();
}

// The exp/log-bound row primitives (SoftmaxRow, SoftmaxBackwardRow,
// KnnSampleSoftmax) live in kernels_rows.cc, compiled with the portable
// library flags — -march=native measurably slows their libm-call loops and
// cannot speed them up. See kernels_rows.h.
using detail::KnnSampleSoftmax;
using detail::SoftmaxBackwardRow;
using detail::SoftmaxRow;

/// MR candidate dot products against one sample row as independent
/// accumulator chains. Per candidate the operation sequence is exactly
/// kernels::Dot (float accumulation per kBlockK run in ascending order,
/// widened to double across runs), so the panel is bitwise equal to MR
/// separate Dot calls — it just breaks the serial FMA dependency chain
/// that made per-candidate Dot latency-bound.
template <int MR>
void KnnDotPanel(const float* __restrict hrow, const float* const* wrows,
                 int hidden, double* __restrict out) {
  double d[MR];
  for (int r = 0; r < MR; ++r) d[r] = 0.0;
  for (int kb = 0; kb < hidden; kb += kBlockK) {
    const int ke = std::min(hidden, kb + kBlockK);
    float acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = 0.0f;
    for (int kk = kb; kk < ke; ++kk) {
      const float hval = hrow[kk];
      for (int r = 0; r < MR; ++r) {
        acc[r] = MulAdd(wrows[r][kk], hval, acc[r]);
      }
    }
    for (int r = 0; r < MR; ++r) d[r] += static_cast<double>(acc[r]);
  }
  for (int r = 0; r < MR; ++r) out[r] = d[r];
}

/// logits[c] = b[cells[c]] + <w[cells[c],:], hrow> for c in [0,k), batched
/// into kRowPanel-wide panels with narrowing remainder panels.
void KnnSampleLogits(const float* hrow, const float* w, const float* b,
                     const int* cells, int k, int hidden, float* logits) {
  const float* wrows[kRowPanel];
  double d[kRowPanel];
  int c = 0;
  auto emit = [&](int width) {
    for (int r = 0; r < width; ++r) {
      const int cell = cells[c + r];
      logits[c + r] =
          static_cast<float>(static_cast<double>(b[cell]) + d[r]);
    }
    c += width;
  };
  while (k - c >= kRowPanel) {
    for (int r = 0; r < kRowPanel; ++r) {
      wrows[r] = w + static_cast<size_t>(cells[c + r]) * hidden;
    }
    KnnDotPanel<kRowPanel>(hrow, wrows, hidden, d);
    emit(kRowPanel);
  }
  if (k - c >= 4) {
    for (int r = 0; r < 4; ++r) {
      wrows[r] = w + static_cast<size_t>(cells[c + r]) * hidden;
    }
    KnnDotPanel<4>(hrow, wrows, hidden, d);
    emit(4);
  }
  if (k - c >= 2) {
    for (int r = 0; r < 2; ++r) {
      wrows[r] = w + static_cast<size_t>(cells[c + r]) * hidden;
    }
    KnnDotPanel<2>(hrow, wrows, hidden, d);
    emit(2);
  }
  if (k - c == 1) {
    wrows[0] = w + static_cast<size_t>(cells[c]) * hidden;
    KnnDotPanel<1>(hrow, wrows, hidden, d);
    emit(1);
  }
}

}  // namespace

void SoftmaxRowsForward(const float* x, float* y, int rows, int cols) {
  if (rows <= 0 || cols <= 0) return;
  const int64_t elems = int64_t{rows} * cols;
  FusedStatsBump(elems);
  const ShapeParams& sp = ParamsFor(elems * kExpCostMacs);
  ThreadPool* pool =
      PoolFor(elems * kExpCostMacs, rows, sp.parallel_min_macs);
  auto run = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      SoftmaxRow(x + i * cols, y + i * cols, cols);
    }
  };
  if (pool == nullptr) {
    run(0, rows);
    return;
  }
  FusedParallelBump();
  pool->ParallelForRange(rows, run, sp.oversplit);
}

void SoftmaxRowsBackwardAdd(const float* y, const float* g, float* dx,
                            int rows, int cols) {
  if (rows <= 0 || cols <= 0) return;
  const int64_t elems = int64_t{rows} * cols;
  FusedStatsBump(2 * elems);
  const ShapeParams& sp = ParamsFor(2 * elems);
  ThreadPool* pool = PoolFor(2 * elems, rows, sp.parallel_min_macs);
  auto run = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      SoftmaxBackwardRow(y + i * cols, g + i * cols, dx + i * cols, cols);
    }
  };
  if (pool == nullptr) {
    run(0, rows);
    return;
  }
  FusedParallelBump();
  pool->ParallelForRange(rows, run, sp.oversplit);
}

void SoftmaxXentBackwardAdd(const float* probs, const int* targets,
                            float scale, float* dx, int rows, int cols) {
  if (rows <= 0 || cols <= 0) return;
  const int64_t elems = int64_t{rows} * cols;
  FusedStatsBump(elems);
  const ShapeParams& sp = ParamsFor(elems);
  ThreadPool* pool = PoolFor(elems, rows, sp.parallel_min_macs);
  auto run = [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* p = probs + i * cols;
      float* d = dx + i * cols;
      const int t = targets[i];
      for (int j = 0; j < cols; ++j) {
        d[j] += scale * (p[j] - (j == t ? 1.0f : 0.0f));
      }
    }
  };
  if (pool == nullptr) {
    run(0, rows);
    return;
  }
  FusedParallelBump();
  pool->ParallelForRange(rows, run, sp.oversplit);
}

double KnnLossForward(const float* h, const float* w, const float* b,
                      const int* indices, const float* weights, int n, int k,
                      int hidden, float* probs) {
  if (n <= 0) return 0.0;
  const int64_t macs = int64_t{n} * k * hidden;
  FusedStatsBump(macs);
  std::vector<double> partials(static_cast<size_t>(n), 0.0);
  const ShapeParams& sp = ParamsFor(macs);
  ThreadPool* pool = PoolFor(macs, n, sp.parallel_min_macs);
  auto run = [&](int64_t i0, int64_t i1) {
    std::vector<float> logits(static_cast<size_t>(k));
    for (int64_t i = i0; i < i1; ++i) {
      const size_t base = static_cast<size_t>(i) * k;
      KnnSampleLogits(h + static_cast<size_t>(i) * hidden, w, b,
                      indices + base, k, hidden, logits.data());
      partials[static_cast<size_t>(i)] = KnnSampleSoftmax(
          logits.data(), weights + base, k, probs + base);
    }
  };
  if (pool == nullptr) {
    run(0, n);
  } else {
    FusedParallelBump();
    pool->ParallelForRange(n, run, sp.oversplit);
  }
  // Fixed reduction order: ascending sample index, independent of how the
  // sample loop was partitioned above.
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += partials[static_cast<size_t>(i)];
  return total;
}

void KnnLossBackwardAdd(const float* h, const float* w, const int* indices,
                        const float* weights, const float* probs, float g,
                        int n, int k, int hidden, float* dh, float* dw,
                        float* db) {
  if (n <= 0 || (dh == nullptr && dw == nullptr && db == nullptr)) return;
  const int64_t macs =
      int64_t{n} * k * hidden * ((dh != nullptr ? 1 : 0) +
                                 (dw != nullptr || db != nullptr ? 1 : 0));
  FusedStatsBump(macs);
  const ShapeParams& sp = ParamsFor(macs);
  const int64_t nk = int64_t{n} * k;
  bool split = false;

  // dh: each sample owns its gradient row; candidates applied in ascending
  // order within the row, exactly the serial loop's per-row sequence.
  if (dh != nullptr) {
    auto run = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        float* hgrad = dh + static_cast<size_t>(i) * hidden;
        for (int c = 0; c < k; ++c) {
          const size_t flat = static_cast<size_t>(i) * k + c;
          const float dlogit = g * (probs[flat] - weights[flat]);
          if (dlogit == 0.0f) continue;
          Axpy(dlogit, w + static_cast<size_t>(indices[flat]) * hidden,
               hgrad, hidden);
        }
      }
    };
    ThreadPool* pool =
        PoolFor(int64_t{n} * k * hidden, n, sp.parallel_min_macs);
    if (pool == nullptr) {
      run(0, n);
    } else {
      split = true;
      pool->ParallelForRange(n, run, sp.oversplit);
    }
  }

  // dw/db: the scatter targets shared vocabulary rows, so sample-parallel
  // accumulation would race (and reorder). Group the flat (sample,
  // candidate) entries by cell instead — a counting sort keyed on the cell
  // index is stable by construction (entries scatter in ascending flat
  // order), so each group replays exactly the serial loop's accumulation
  // sequence — and parallelize over the disjoint groups. Cells are bounded
  // by the vocabulary size, so the histogram is O(max_cell + nk) versus the
  // comparison sort's O(nk log nk), and its prefix sums double as the group
  // boundaries.
  if (dw != nullptr || db != nullptr) {
    int64_t max_cell = 0;
    for (int64_t e = 0; e < nk; ++e) {
      max_cell = std::max<int64_t>(max_cell, indices[static_cast<size_t>(e)]);
    }
    std::vector<int64_t> cell_start(static_cast<size_t>(max_cell) + 2, 0);
    for (int64_t e = 0; e < nk; ++e) {
      ++cell_start[static_cast<size_t>(indices[static_cast<size_t>(e)]) + 1];
    }
    for (size_t c = 1; c < cell_start.size(); ++c) {
      cell_start[c] += cell_start[c - 1];
    }
    std::vector<int64_t> order(static_cast<size_t>(nk));
    {
      std::vector<int64_t> cursor(cell_start.begin(), cell_start.end() - 1);
      for (int64_t e = 0; e < nk; ++e) {
        const size_t cell = static_cast<size_t>(indices[static_cast<size_t>(e)]);
        order[static_cast<size_t>(cursor[cell]++)] = e;
      }
    }
    std::vector<int64_t> group_start;
    for (int64_t cell = 0; cell <= max_cell; ++cell) {
      if (cell_start[static_cast<size_t>(cell)] !=
          cell_start[static_cast<size_t>(cell) + 1]) {
        group_start.push_back(cell_start[static_cast<size_t>(cell)]);
      }
    }
    group_start.push_back(nk);
    const int64_t groups = static_cast<int64_t>(group_start.size()) - 1;
    auto run = [&](int64_t g0, int64_t g1) {
      for (int64_t grp = g0; grp < g1; ++grp) {
        const int64_t begin = group_start[static_cast<size_t>(grp)];
        const int64_t end = group_start[static_cast<size_t>(grp + 1)];
        const int cell = indices[order[static_cast<size_t>(begin)]];
        float* wgrad =
            dw != nullptr ? dw + static_cast<size_t>(cell) * hidden : nullptr;
        for (int64_t e = begin; e < end; ++e) {
          const int64_t flat = order[static_cast<size_t>(e)];
          const float dlogit = g * (probs[flat] - weights[flat]);
          if (dlogit == 0.0f) continue;
          if (wgrad != nullptr) {
            Axpy(dlogit, h + (flat / k) * static_cast<size_t>(hidden), wgrad,
                 hidden);
          }
          if (db != nullptr) db[cell] += dlogit;
        }
      }
    };
    ThreadPool* pool =
        PoolFor(int64_t{n} * k * hidden, groups, sp.parallel_min_macs);
    if (pool == nullptr) {
      run(0, groups);
    } else {
      split = true;
      pool->ParallelForRange(groups, run, sp.oversplit);
    }
  }
  if (split) FusedParallelBump();
}

void ReferenceSoftmaxRowsForward(const float* x, float* y, int rows,
                                 int cols) {
  for (int i = 0; i < rows; ++i) {
    SoftmaxRow(x + static_cast<size_t>(i) * cols,
               y + static_cast<size_t>(i) * cols, cols);
  }
}

void ReferenceSoftmaxRowsBackwardAdd(const float* y, const float* g,
                                     float* dx, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    SoftmaxBackwardRow(y + static_cast<size_t>(i) * cols,
                       g + static_cast<size_t>(i) * cols,
                       dx + static_cast<size_t>(i) * cols, cols);
  }
}

double ReferenceKnnLossForward(const float* h, const float* w, const float* b,
                               const int* indices, const float* weights,
                               int n, int k, int hidden, float* probs) {
  double total = 0.0;
  std::vector<float> logits(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    const float* hrow = h + static_cast<size_t>(i) * hidden;
    const size_t base = static_cast<size_t>(i) * k;
    for (int c = 0; c < k; ++c) {
      const int cell = indices[base + c];
      logits[static_cast<size_t>(c)] = static_cast<float>(
          static_cast<double>(b[cell]) +
          Dot(w + static_cast<size_t>(cell) * hidden, hrow, hidden));
    }
    total += KnnSampleSoftmax(logits.data(), weights + base, k, probs + base);
  }
  return total;
}

void ReferenceKnnLossBackwardAdd(const float* h, const float* w,
                                 const int* indices, const float* weights,
                                 const float* probs, float g, int n, int k,
                                 int hidden, float* dh, float* dw,
                                 float* db) {
  for (int i = 0; i < n; ++i) {
    const float* hrow = h + static_cast<size_t>(i) * hidden;
    float* hgrad = dh != nullptr ? dh + static_cast<size_t>(i) * hidden
                                 : nullptr;
    for (int c = 0; c < k; ++c) {
      const size_t flat = static_cast<size_t>(i) * k + c;
      const float dlogit = g * (probs[flat] - weights[flat]);
      if (dlogit == 0.0f) continue;
      const int cell = indices[flat];
      if (hgrad != nullptr) {
        Axpy(dlogit, w + static_cast<size_t>(cell) * hidden, hgrad, hidden);
      }
      if (dw != nullptr) {
        Axpy(dlogit, hrow, dw + static_cast<size_t>(cell) * hidden, hidden);
      }
      if (db != nullptr) db[cell] += dlogit;
    }
  }
}

}  // namespace e2dtc::nn::kernels
