#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace e2dtc::nn::kernels {

namespace {

/// The one multiply-accumulate every kernel and reference loop uses.
/// Contraction must be pinned in source: left to -ffp-contract=fast the
/// compiler fuses s += x*y into an FMA in some loops and not others
/// (vectorized tile vs scalar reference), and the 1-2 ulp rounding
/// difference breaks the bit-for-bit kernel==reference contract. With
/// hardware FMA (this TU builds with -march=native by default) std::fma
/// is a single instruction scalar or vectorized; without it, explicit
/// mul-then-add is the only rounding the ISA can do anyway.
inline float MulAdd(float x, float y, float s) {
#ifdef __FMA__
  return std::fma(x, y, s);
#else
  return s + x * y;
#endif
}

/// Metric-name catalog for the kernel layer, resolved once per process.
struct Instruments {
  obs::Counter gemm_macs = obs::Registry::Global().counter("nn.gemm.macs");
  obs::Counter gemm_parallel =
      obs::Registry::Global().counter("nn.gemm.parallel_dispatches");
};

Instruments& Instr() {
  static Instruments* instr = new Instruments();
  return *instr;
}

/// Always-on tallies behind GetDispatchStats(). Separate from the gated obs
/// counters above so epoch-boundary telemetry works without the metrics
/// switch; bumped only on the GemmNN entry path (once per call), never per
/// panel, so there is no cross-thread contention.
std::atomic<uint64_t> g_dispatches{0};
std::atomic<uint64_t> g_parallel_dispatches{0};
std::atomic<uint64_t> g_macs{0};

// ---- Threading ----------------------------------------------------------
//
// One process-wide pool, created lazily on the first matmul big enough to
// split. SetNumThreads must not race with in-flight kernel calls (callers
// configure threading at startup / test setup, not mid-training).

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = hardware concurrency
int g_pool_threads = -1;      // what g_pool was built with

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

/// Pool to split `macs` multiply-accumulates over, or nullptr for the
/// serial path. Never splits from inside a pool worker: the encode pool
/// runs whole forward passes per task, and nesting parallel regions would
/// only oversubscribe (results are identical either way — see contract).
ThreadPool* PoolFor(int64_t macs, int64_t panels) {
  if (macs < kParallelMinMacs || panels < 2) return nullptr;
  if (ThreadPool::OnWorkerThread()) return nullptr;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int want = ResolveThreads(g_requested_threads);
  if (want <= 1) return nullptr;
  if (g_pool == nullptr || g_pool_threads != want) {
    g_pool.reset();
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_threads = want;
  }
  return g_pool.get();
}

// ---- GEMM core ----------------------------------------------------------
//
// One NN kernel does all the work; the TN/NT variants transpose their
// strided operand into thread-local scratch first (an exact copy, so the
// accumulation contract is unchanged). The tiled panel below computes each
// output element as float partial sums over kBlockK-long k-runs in
// ascending order, widened to double across runs — bitwise identical to
// ReferenceMatmulNN for every shape, tile configuration, and thread count.

/// One MR-row panel of C: c[i0..i0+MR) (+)= a[i0..i0+MR) * b.
template <int MR>
void PanelNN(int i0, int k, int m, const float* __restrict a,
             const float* __restrict b, float* __restrict c,
             bool accumulate) {
  constexpr int NR = kColPanel;
  const float* arow[MR];
  for (int r = 0; r < MR; ++r) arow[r] = a + static_cast<size_t>(i0 + r) * k;

  int j0 = 0;
  for (; j0 + NR <= m; j0 += NR) {
    // Register tile: MR x NR float accumulators per k-block, MR x NR double
    // accumulators across blocks. With MR=8, NR=32 the float tile is 16
    // AVX-512 registers; GCC keeps it enregistered at -O3.
    double dtile[MR][NR];
    for (int r = 0; r < MR; ++r) {
      for (int t = 0; t < NR; ++t) dtile[r][t] = 0.0;
    }
    for (int kb = 0; kb < k; kb += kBlockK) {
      const int ke = std::min(k, kb + kBlockK);
      float acc[MR][NR];
      for (int r = 0; r < MR; ++r) {
        for (int t = 0; t < NR; ++t) acc[r][t] = 0.0f;
      }
      for (int kk = kb; kk < ke; ++kk) {
        const float* __restrict brow = b + static_cast<size_t>(kk) * m + j0;
        for (int r = 0; r < MR; ++r) {
          const float ar = arow[r][kk];
          for (int t = 0; t < NR; ++t) acc[r][t] = MulAdd(ar, brow[t], acc[r][t]);
        }
      }
      for (int r = 0; r < MR; ++r) {
        for (int t = 0; t < NR; ++t) dtile[r][t] += static_cast<double>(acc[r][t]);
      }
    }
    for (int r = 0; r < MR; ++r) {
      float* __restrict crow = c + static_cast<size_t>(i0 + r) * m + j0;
      if (accumulate) {
        for (int t = 0; t < NR; ++t) crow[t] += static_cast<float>(dtile[r][t]);
      } else {
        for (int t = 0; t < NR; ++t) crow[t] = static_cast<float>(dtile[r][t]);
      }
    }
  }
  // Column remainder (m % NR): scalar, same block structure and k order.
  for (; j0 < m; ++j0) {
    for (int r = 0; r < MR; ++r) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(arow[r][kk], b[static_cast<size_t>(kk) * m + j0], s);
        }
        d += static_cast<double>(s);
      }
      float* cell = c + static_cast<size_t>(i0 + r) * m + j0;
      *cell = accumulate ? *cell + static_cast<float>(d)
                         : static_cast<float>(d);
    }
  }
}

/// Rows [i0, i0+rows): full kRowPanel tiles, then narrowing remainder tiles.
void RowRangeNN(int i0, int rows, int k, int m, const float* a, const float* b,
                float* c, bool accumulate) {
  int i = i0;
  for (; i + kRowPanel <= i0 + rows; i += kRowPanel) {
    PanelNN<kRowPanel>(i, k, m, a, b, c, accumulate);
  }
  const int rem = i0 + rows - i;
  if (rem >= 4) {
    PanelNN<4>(i, k, m, a, b, c, accumulate);
    i += 4;
  }
  if (i0 + rows - i >= 2) {
    PanelNN<2>(i, k, m, a, b, c, accumulate);
    i += 2;
  }
  if (i0 + rows - i == 1) PanelNN<1>(i, k, m, a, b, c, accumulate);
}

void GemmNN(int n, int k, int m, const float* a, const float* b, float* c,
            bool accumulate) {
  if (n <= 0 || m <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      std::memset(c, 0, sizeof(float) * static_cast<size_t>(n) * m);
    }
    return;
  }
  const int64_t macs = int64_t{n} * k * m;
  g_dispatches.fetch_add(1, std::memory_order_relaxed);
  g_macs.fetch_add(static_cast<uint64_t>(macs), std::memory_order_relaxed);
  Instr().gemm_macs.Increment(static_cast<uint64_t>(macs));
  const int64_t panels = (n + kRowPanel - 1) / kRowPanel;
  ThreadPool* pool = PoolFor(macs, panels);
  if (pool == nullptr) {
    RowRangeNN(0, n, k, m, a, b, c, accumulate);
    return;
  }
  g_parallel_dispatches.fetch_add(1, std::memory_order_relaxed);
  Instr().gemm_parallel.Increment();
  // Panel p always owns rows [p*kRowPanel, ...): the partition is a pure
  // function of n, so per-element accumulation order never depends on the
  // worker count or chunk assignment.
  pool->ParallelFor(panels, [&](int64_t p) {
    const int begin = static_cast<int>(p) * kRowPanel;
    const int rows = std::min(kRowPanel, n - begin);
    RowRangeNN(begin, rows, k, m, a, b, c, accumulate);
  });
}

/// Thread-local transpose scratch, reused across calls (backward passes
/// transpose a weight or activation every matmul node).
std::vector<float>& TransposeScratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

}  // namespace

DispatchStats GetDispatchStats() {
  DispatchStats stats;
  stats.dispatches = g_dispatches.load(std::memory_order_relaxed);
  stats.parallel_dispatches =
      g_parallel_dispatches.load(std::memory_order_relaxed);
  stats.macs = g_macs.load(std::memory_order_relaxed);
  return stats;
}

void SetNumThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = n < 0 ? 0 : n;
  // Rebuild lazily: drop the pool now so the next matmul sizes it right.
  g_pool.reset();
  g_pool_threads = -1;
}

int NumThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveThreads(g_requested_threads);
}

void MatmulNN(int n, int k, int m, const float* a, const float* b, float* c,
              bool accumulate) {
  GemmNN(n, k, m, a, b, c, accumulate);
}

void MatmulTN(int n, int k, int m, const float* a, const float* b, float* c) {
  // a is [k,n]; copy a^T into scratch so the k-loop is contiguous.
  std::vector<float>& at = TransposeScratch();
  at.resize(static_cast<size_t>(n) * k);
  Transpose(a, k, n, at.data());
  GemmNN(n, k, m, at.data(), b, c, /*accumulate=*/true);
}

void MatmulNT(int n, int k, int m, const float* a, const float* b, float* c) {
  // b is [m,k]; copy b^T into scratch so row-major NN streaming applies.
  std::vector<float>& bt = TransposeScratch();
  bt.resize(static_cast<size_t>(k) * m);
  Transpose(b, m, k, bt.data());
  GemmNN(n, k, m, a, bt.data(), c, /*accumulate=*/true);
}

void ReferenceMatmulNN(int n, int k, int m, const float* a, const float* b,
                       float* c, bool accumulate) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(i) * k + kk],
                     b[static_cast<size_t>(kk) * m + j], s);
        }
        d += static_cast<double>(s);
      }
      float* cell = c + static_cast<size_t>(i) * m + j;
      *cell = accumulate ? *cell + static_cast<float>(d)
                         : static_cast<float>(d);
    }
  }
}

void ReferenceMatmulTN(int n, int k, int m, const float* a, const float* b,
                       float* c) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(kk) * n + i],
                     b[static_cast<size_t>(kk) * m + j], s);
        }
        d += static_cast<double>(s);
      }
      c[static_cast<size_t>(i) * m + j] += static_cast<float>(d);
    }
  }
}

void ReferenceMatmulNT(int n, int k, int m, const float* a, const float* b,
                       float* c) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double d = 0.0;
      for (int kb = 0; kb < k; kb += kBlockK) {
        const int ke = std::min(k, kb + kBlockK);
        float s = 0.0f;
        for (int kk = kb; kk < ke; ++kk) {
          s = MulAdd(a[static_cast<size_t>(i) * k + kk],
                     b[static_cast<size_t>(j) * k + kk], s);
        }
        d += static_cast<double>(s);
      }
      c[static_cast<size_t>(i) * m + j] += static_cast<float>(d);
    }
  }
}

void Transpose(const float* a, int rows, int cols, float* out) {
  constexpr int T = 32;  // 4 KiB tile pair: both footprints stay in L1.
  for (int i0 = 0; i0 < rows; i0 += T) {
    const int ie = std::min(rows, i0 + T);
    for (int j0 = 0; j0 < cols; j0 += T) {
      const int je = std::min(cols, j0 + T);
      for (int i = i0; i < ie; ++i) {
        const float* __restrict src = a + static_cast<size_t>(i) * cols;
        for (int j = j0; j < je; ++j) {
          out[static_cast<size_t>(j) * rows + i] = src[j];
        }
      }
    }
  }
}

double Dot(const float* a, const float* b, int64_t n) {
  double d = 0.0;
  for (int64_t kb = 0; kb < n; kb += kBlockK) {
    const int64_t ke = std::min<int64_t>(n, kb + kBlockK);
    float s = 0.0f;
    for (int64_t i = kb; i < ke; ++i) s = MulAdd(a[i], b[i], s);
    d += static_cast<double>(s);
  }
  return d;
}

double SquaredDistance(const float* a, const float* b, int64_t n) {
  double d = 0.0;
  for (int64_t kb = 0; kb < n; kb += kBlockK) {
    const int64_t ke = std::min<int64_t>(n, kb + kBlockK);
    float s = 0.0f;
    for (int64_t i = kb; i < ke; ++i) {
      const float diff = a[i] - b[i];
      s = MulAdd(diff, diff, s);
    }
    d += static_cast<double>(s);
  }
  return d;
}

void Axpy(float alpha, const float* __restrict x, float* __restrict y,
          int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddBiasRow(float* c, const float* __restrict bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* __restrict crow = c + static_cast<size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) crow[j] += bias[j];
  }
}

void ColumnSumAdd(const float* g, int rows, int cols, float* __restrict dst) {
  for (int r = 0; r < rows; ++r) {
    const float* __restrict grow = g + static_cast<size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) dst[j] += grow[j];
  }
}

void SigmoidForward(const float* __restrict x, float* __restrict y,
                    int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void SigmoidBackwardAdd(const float* __restrict y, const float* __restrict g,
                        float* __restrict dx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dx[i] += y[i] * (1.0f - y[i]) * g[i];
}

void TanhForward(const float* __restrict x, float* __restrict y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void TanhBackwardAdd(const float* __restrict y, const float* __restrict g,
                     float* __restrict dx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dx[i] += (1.0f - y[i] * y[i]) * g[i];
}

}  // namespace e2dtc::nn::kernels
