#include "nn/kernels_rows.h"

#include <algorithm>
#include <cmath>

// NOTE: this TU is deliberately built with the portable library flags, not
// the -march=native set nn/kernels.cc gets — see kernels_rows.h.

namespace e2dtc::nn::kernels::detail {

void SoftmaxRow(const float* __restrict r, float* __restrict o, int cols) {
  float mx = r[0];
  for (int j = 1; j < cols; ++j) mx = std::max(mx, r[j]);
  double denom = 0.0;
  for (int j = 0; j < cols; ++j) {
    o[j] = std::exp(r[j] - mx);
    denom += o[j];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (int j = 0; j < cols; ++j) o[j] *= inv;
}

void SoftmaxBackwardRow(const float* __restrict y, const float* __restrict g,
                        float* __restrict d, int cols) {
  double dot = 0.0;
  for (int j = 0; j < cols; ++j) dot += g[j] * y[j];
  for (int j = 0; j < cols; ++j) {
    d[j] += y[j] * (g[j] - static_cast<float>(dot));
  }
}

double KnnSampleSoftmax(const float* logits, const float* wrow_weights,
                        int k, float* probs_row) {
  float mx = -1e30f;
  for (int c = 0; c < k; ++c) mx = std::max(mx, logits[c]);
  double denom = 0.0;
  for (int c = 0; c < k; ++c) denom += std::exp(logits[c] - mx);
  const double log_denom = std::log(denom) + mx;
  double partial = 0.0;
  for (int c = 0; c < k; ++c) {
    const double logp = logits[c] - log_denom;
    probs_row[c] = static_cast<float>(std::exp(logp));
    partial -= wrow_weights[c] * logp;
  }
  return partial;
}

}  // namespace e2dtc::nn::kernels::detail
