#include "nn/autotune.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace e2dtc::nn::kernels {

namespace {

constexpr const char* kCacheSchema = "e2dtc.kernel_tuning.v1";

/// "Never split" threshold. Not INT64_MAX: thresholds round-trip through
/// JSON doubles, and 2^60 is exactly representable (and still 5 orders of
/// magnitude above any real matmul in this codebase).
constexpr int64_t kNeverParallelMacs = int64_t{1} << 60;

/// Candidate grids. rows_per_task must stay a multiple of kRowPanel;
/// oversplit 1 disables the rebalancing oversplit entirely.
constexpr int kRowsPerTaskGrid[] = {8, 16, 32, 64};
constexpr int kOversplitGrid[] = {1, 2, 4, 8};

struct ProbeShape {
  int n, k, m;
  int64_t macs() const { return int64_t{n} * k * m; }
};

/// Representative GEMM per shape class (see ClassifyShape): a toy-batch
/// GRU gate, a production-batch GRU gate, and an attention/projection
/// scale product.
ProbeShape RepShape(ShapeClass c, bool quick) {
  switch (c) {
    case ShapeClass::kSmall:
      return quick ? ProbeShape{32, 64, 96} : ProbeShape{32, 64, 192};
    case ShapeClass::kMedium:
      return quick ? ProbeShape{64, 256, 384} : ProbeShape{256, 256, 768};
    case ShapeClass::kLarge:
      return quick ? ProbeShape{256, 512, 512} : ProbeShape{512, 512, 512};
  }
  return ProbeShape{32, 64, 192};
}

/// Threshold ladder inside the small class: the crossover where parallel
/// dispatch starts paying is found by timing serial vs parallel at each
/// rung and taking the smallest rung of the maximal winning suffix.
const ProbeShape kSmallLadder[] = {
    {32, 32, 64},    // 2^16 MACs
    {32, 64, 64},    // 2^17
    {64, 64, 64},    // 2^18
    {64, 64, 128},   // 2^19
    {64, 128, 128},  // 2^20
    {128, 128, 128}  // 2^21
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FillPseudoRandom(std::vector<float>* v, uint64_t seed) {
  uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  for (float& x : *v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<float>(static_cast<int64_t>(s % 2001) - 1000) / 1000.0f;
  }
}

/// Uniform profile whose every class uses `params`; only the probed shape
/// actually dispatches while it is installed.
TuningProfile UniformProfile(const ShapeParams& params) {
  TuningProfile profile;
  for (int i = 0; i < kNumShapeClasses; ++i) profile.classes[i] = params;
  return profile;
}

/// Best-of-`reps` per-call wall time for the shape under the currently
/// installed profile, with iterations scaled so one measurement covers at
/// least `min_sample_ms`.
double TimeShape(const ProbeShape& shape, const float* a, const float* b,
                 float* c, const AutotuneOptions& opts) {
  auto run_once = [&] {
    MatmulNN(shape.n, shape.k, shape.m, a, b, c, /*accumulate=*/false);
  };
  run_once();  // Warm caches and the lazily created pool.
  double t0 = NowMs();
  run_once();
  const double est = std::max(1e-4, NowMs() - t0);
  const int iters =
      static_cast<int>(std::max(1.0, std::ceil(opts.min_sample_ms / est)));
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < std::max(1, opts.reps); ++rep) {
    t0 = NowMs();
    for (int it = 0; it < iters; ++it) run_once();
    best = std::min(best, (NowMs() - t0) / iters);
  }
  return best;
}

Status ValidateCacheClass(const obs::Json& entry, int index,
                          ShapeParams* out) {
  if (!entry.is_object()) {
    return Status::InvalidArgument("tuning cache: class entry not an object");
  }
  const obs::Json* name = entry.Find("class");
  const char* expected =
      ShapeClassName(static_cast<ShapeClass>(index));
  if (name == nullptr || !name->is_string() || name->str() != expected) {
    return Status::InvalidArgument(
        StrFormat("tuning cache: class %d must be named \"%s\"", index,
                  expected));
  }
  struct Field {
    const char* key;
    double lo, hi;
    double* slot;
  };
  double rows = 0.0, min_macs = 0.0, oversplit = 0.0;
  const Field fields[] = {
      {"rows_per_task", 8.0, 4096.0, &rows},
      {"parallel_min_macs", 1.0, static_cast<double>(kNeverParallelMacs),
       &min_macs},
      {"oversplit", 1.0, 64.0, &oversplit},
  };
  for (const Field& f : fields) {
    const obs::Json* v = entry.Find(f.key);
    if (v == nullptr || !v->is_number() || v->number() < f.lo ||
        v->number() > f.hi || v->number() != std::floor(v->number())) {
      return Status::InvalidArgument(
          StrFormat("tuning cache: bad %s in class \"%s\"", f.key, expected));
    }
    *f.slot = v->number();
  }
  if (static_cast<int>(rows) % kRowPanel != 0) {
    return Status::InvalidArgument(
        StrFormat("tuning cache: rows_per_task in class \"%s\" is not a "
                  "multiple of %d",
                  expected, kRowPanel));
  }
  out->rows_per_task = static_cast<int>(rows);
  out->parallel_min_macs = static_cast<int64_t>(min_macs);
  out->oversplit = static_cast<int>(oversplit);
  return Status::OK();
}

}  // namespace

TuningProfile RunAutotuneProbe(const AutotuneOptions& opts) {
  E2DTC_CHECK_MSG(!ThreadPool::OnWorkerThread(),
                  "RunAutotuneProbe must not run on a pool worker");
  const TuningProfile entry_profile = GetTuningProfile();
  const double wall_start = NowMs();
  TuningProfile result;
  result.provenance = "probe";
  result.probed_threads = NumThreads();

  // Shared operand buffers sized for the largest probed shape.
  int64_t max_a = 0, max_b = 0, max_c = 0;
  auto grow = [&](const ProbeShape& s) {
    max_a = std::max(max_a, int64_t{s.n} * s.k);
    max_b = std::max(max_b, int64_t{s.k} * s.m);
    max_c = std::max(max_c, int64_t{s.n} * s.m);
  };
  for (int ci = 0; ci < kNumShapeClasses; ++ci) {
    grow(RepShape(static_cast<ShapeClass>(ci), opts.quick));
  }
  for (const ProbeShape& s : kSmallLadder) grow(s);
  std::vector<float> a(static_cast<size_t>(max_a));
  std::vector<float> b(static_cast<size_t>(max_b));
  std::vector<float> c(static_cast<size_t>(max_c));
  FillPseudoRandom(&a, 1);
  FillPseudoRandom(&b, 2);

  if (result.probed_threads <= 1) {
    // Single worker: the dispatcher never splits, so every candidate times
    // identically. Record the serial outcome rather than pretending the
    // sweep measured anything.
    for (int ci = 0; ci < kNumShapeClasses; ++ci) {
      result.classes[ci].parallel_min_macs = kNeverParallelMacs;
    }
    result.probe_ms = NowMs() - wall_start;
    return result;
  }

  for (int ci = 0; ci < kNumShapeClasses; ++ci) {
    const ShapeClass cls = static_cast<ShapeClass>(ci);
    const ProbeShape rep = RepShape(cls, opts.quick);
    ShapeParams serial;
    serial.parallel_min_macs = kNeverParallelMacs;
    SetTuningProfile(UniformProfile(serial));
    const double serial_ms = TimeShape(rep, a.data(), b.data(), c.data(),
                                       opts);
    double best_ms = std::numeric_limits<double>::infinity();
    ShapeParams best;
    for (int rpt : kRowsPerTaskGrid) {
      if (rpt >= rep.n && rpt > kRowPanel) continue;  // < 2 tasks: no split.
      for (int osp : kOversplitGrid) {
        ShapeParams cand;
        cand.rows_per_task = rpt;
        cand.parallel_min_macs = 1;
        cand.oversplit = osp;
        SetTuningProfile(UniformProfile(cand));
        const double ms = TimeShape(rep, a.data(), b.data(), c.data(), opts);
        if (ms < best_ms) {
          best_ms = ms;
          best = cand;
        }
      }
    }
    ShapeParams& chosen = result.classes[ci];
    if (best_ms < serial_ms) {
      chosen.rows_per_task = best.rows_per_task;
      chosen.oversplit = best.oversplit;
      // Threshold: class floor for medium/large (every member is at least
      // as big as shapes that already won); ladder crossover for small.
      switch (cls) {
        case ShapeClass::kSmall:
          chosen.parallel_min_macs = rep.macs();
          break;
        case ShapeClass::kMedium:
          chosen.parallel_min_macs = kSmallClassMaxMacs;
          break;
        case ShapeClass::kLarge:
          chosen.parallel_min_macs = kMediumClassMaxMacs;
          break;
      }
    } else {
      // Parallel lost at the representative shape: keep the whole class on
      // the calling thread.
      chosen.parallel_min_macs =
          cls == ShapeClass::kSmall
              ? kSmallClassMaxMacs
              : (cls == ShapeClass::kMedium ? kMediumClassMaxMacs
                                            : kNeverParallelMacs);
    }
    if (cls == ShapeClass::kSmall && best_ms < serial_ms) {
      // Refine the small-class threshold on the ladder: walk down from the
      // largest rung, extending the parallel-wins suffix as far as it
      // holds.
      int64_t crossover = rep.macs();
      for (int li = static_cast<int>(std::size(kSmallLadder)) - 1; li >= 0;
           --li) {
        const ProbeShape& rung = kSmallLadder[li];
        SetTuningProfile(UniformProfile(serial));
        const double rung_serial =
            TimeShape(rung, a.data(), b.data(), c.data(), opts);
        ShapeParams par = result.classes[ci];
        par.parallel_min_macs = 1;
        SetTuningProfile(UniformProfile(par));
        const double rung_parallel =
            TimeShape(rung, a.data(), b.data(), c.data(), opts);
        if (rung_parallel < rung_serial) {
          crossover = rung.macs();
        } else {
          break;
        }
      }
      result.classes[ci].parallel_min_macs = crossover;
    }
  }

  SetTuningProfile(entry_profile);
  result.probe_ms = NowMs() - wall_start;
  return result;
}

obs::Json TuningProfileJson(const TuningProfile& profile) {
  obs::Json doc = obs::Json::Object();
  doc.Set("provenance", profile.provenance);
  doc.Set("probe_ms", profile.probe_ms);
  doc.Set("probed_threads", static_cast<int64_t>(profile.probed_threads));
  obs::Json classes = obs::Json::Array();
  for (int i = 0; i < kNumShapeClasses; ++i) {
    const ShapeParams& p = profile.classes[i];
    obs::Json entry = obs::Json::Object();
    entry.Set("class",
              std::string(ShapeClassName(static_cast<ShapeClass>(i))));
    entry.Set("rows_per_task", static_cast<int64_t>(p.rows_per_task));
    entry.Set("parallel_min_macs", static_cast<int64_t>(p.parallel_min_macs));
    entry.Set("oversplit", static_cast<int64_t>(p.oversplit));
    classes.Append(std::move(entry));
  }
  doc.Set("classes", std::move(classes));
  return doc;
}

Status SaveTuningProfile(const TuningProfile& profile,
                         const std::string& path) {
  obs::Json doc = TuningProfileJson(profile);
  doc.Set("schema", std::string(kCacheSchema));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open tuning cache for write: " + tmp);
    }
    out << doc.Dump() << "\n";
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to tuning cache: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename tuning cache into place: " + path);
  }
  return Status::OK();
}

Result<TuningProfile> LoadTuningProfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read tuning cache: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  obs::Json doc;
  std::string error;
  if (!obs::Json::Parse(text.str(), &doc, &error)) {
    return Status::InvalidArgument("tuning cache " + path +
                                   " is not valid JSON: " + error);
  }
  const obs::Json* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str() != kCacheSchema) {
    return Status::InvalidArgument("tuning cache " + path +
                                   " has missing or unknown schema");
  }
  const obs::Json* classes = doc.Find("classes");
  if (classes == nullptr || !classes->is_array() ||
      classes->size() != static_cast<size_t>(kNumShapeClasses)) {
    return Status::InvalidArgument(
        StrFormat("tuning cache %s must carry exactly %d classes",
                  path.c_str(), kNumShapeClasses));
  }
  TuningProfile profile;
  for (int i = 0; i < kNumShapeClasses; ++i) {
    Status st = ValidateCacheClass(classes->at(static_cast<size_t>(i)), i,
                                   &profile.classes[i]);
    if (!st.ok()) return st;
  }
  const obs::Json* probe_ms = doc.Find("probe_ms");
  if (probe_ms != nullptr && probe_ms->is_number()) {
    profile.probe_ms = probe_ms->number();
  }
  const obs::Json* threads = doc.Find("probed_threads");
  if (threads != nullptr && threads->is_number()) {
    profile.probed_threads = static_cast<int>(threads->number());
  }
  profile.provenance = "cached:" + path;
  return profile;
}

Status ConfigureAutotune(const std::string& mode) {
  if (mode == "off") {
    ResetTuningProfile();
    return Status::OK();
  }
  if (mode == "probe") {
    TuningProfile probed = RunAutotuneProbe();
    SetTuningProfile(probed);
    E2DTC_LOG(Info) << "kernel autotune: probe finished in "
                    << probed.probe_ms << " ms (threads="
                    << probed.probed_threads << ")";
    return Status::OK();
  }
  if (StartsWith(mode, "cached:")) {
    const std::string path = mode.substr(sizeof("cached:") - 1);
    if (path.empty()) {
      return Status::InvalidArgument(
          "--kernel-autotune cached: requires a path");
    }
    Result<TuningProfile> loaded = LoadTuningProfile(path);
    if (loaded.ok()) {
      SetTuningProfile(*loaded);
      E2DTC_LOG(Info) << "kernel autotune: loaded cached profile from "
                      << path;
      return Status::OK();
    }
    if (loaded.status().code() != StatusCode::kIOError) {
      // The file exists but is corrupt/invalid: surface it instead of
      // silently re-probing over a configuration mistake.
      return loaded.status();
    }
    TuningProfile probed = RunAutotuneProbe();
    Status saved = SaveTuningProfile(probed, path);
    if (!saved.ok()) return saved;
    SetTuningProfile(probed);
    E2DTC_LOG(Info) << "kernel autotune: probed in " << probed.probe_ms
                    << " ms and cached profile to " << path;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "--kernel-autotune must be off, probe, or cached:<path> (got \"" +
      mode + "\")");
}

}  // namespace e2dtc::nn::kernels
