#include "nn/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace e2dtc::nn {

Result<EigenDecomposition> SymmetricEigen(const Tensor& a, int max_sweeps,
                                          double tolerance) {
  const int n = a.rows();
  if (n != a.cols()) {
    return Status::InvalidArgument("eigendecomposition needs a square matrix");
  }
  if (n == 0) return Status::InvalidArgument("empty matrix");
  // Symmetry check, scaled by magnitude.
  double scale = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    scale = std::max(scale, std::abs(static_cast<double>(a.data()[i])));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (std::abs(a.at(i, j) - a.at(j, i)) > 1e-4 * std::max(scale, 1.0)) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  // Work in double for accuracy.
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      m[static_cast<size_t>(i) * n + j] =
          0.5 * (static_cast<double>(a.at(i, j)) + a.at(j, i));
    }
  }
  std::vector<double> v(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i) * n + i] = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double x = m[static_cast<size_t>(i) * n + j];
        s += 2.0 * x * x;
      }
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tolerance * std::max(scale, 1e-30)) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m[static_cast<size_t>(p) * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = m[static_cast<size_t>(p) * n + p];
        const double aqq = m[static_cast<size_t>(q) * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q.
        for (int k = 0; k < n; ++k) {
          const double mkp = m[static_cast<size_t>(k) * n + p];
          const double mkq = m[static_cast<size_t>(k) * n + q];
          m[static_cast<size_t>(k) * n + p] = c * mkp - s * mkq;
          m[static_cast<size_t>(k) * n + q] = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const double mpk = m[static_cast<size_t>(p) * n + k];
          const double mqk = m[static_cast<size_t>(q) * n + k];
          m[static_cast<size_t>(p) * n + k] = c * mpk - s * mqk;
          m[static_cast<size_t>(q) * n + k] = s * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v[static_cast<size_t>(k) * n + p];
          const double vkq = v[static_cast<size_t>(k) * n + q];
          v[static_cast<size_t>(k) * n + p] = c * vkp - s * vkq;
          v[static_cast<size_t>(k) * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return m[static_cast<size_t>(x) * n + x] <
           m[static_cast<size_t>(y) * n + y];
  });

  EigenDecomposition out;
  out.values.reserve(static_cast<size_t>(n));
  out.vectors = Tensor(n, n);
  for (int col = 0; col < n; ++col) {
    const int src = order[static_cast<size_t>(col)];
    out.values.push_back(m[static_cast<size_t>(src) * n + src]);
    for (int row = 0; row < n; ++row) {
      out.vectors.at(row, col) =
          static_cast<float>(v[static_cast<size_t>(row) * n + src]);
    }
  }
  return out;
}

}  // namespace e2dtc::nn
