#ifndef E2DTC_NN_GRU_H_
#define E2DTC_NN_GRU_H_

#include <vector>

#include "nn/module.h"

namespace e2dtc::nn {

/// Single GRU cell (PyTorch gate convention):
///   r = sigmoid(x Wxr + bxr + h Whr + bhr)
///   z = sigmoid(x Wxz + bxz + h Whz + bhz)
///   n = tanh(x Wxn + bxn + r * (h Whn + bhn))
///   h' = (1 - z) * n + z * h
/// The three gates are fused into single [in,3H] / [H,3H] matmuls
/// (column blocks ordered r, z, n).
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size, Rng* rng);

  /// x: [B, in], h: [B, H] -> new hidden [B, H].
  Var Forward(const Var& x, const Var& h) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Var wx_;  // [in, 3H]
  Var wh_;  // [H, 3H]
  Var bx_;  // [1, 3H]
  Var bh_;  // [1, 3H]
};

/// Stack of GRU cells (layer l feeds layer l+1). Sequence iteration and
/// padding masks are the caller's concern (see core/seq2seq.*): the stack
/// exposes a single-timestep Step() so encoder and decoder can share it.
class GruStack : public Module {
 public:
  /// `num_layers` cells; layer 0 consumes `input_size`, the rest consume
  /// `hidden_size`. Optional inter-layer dropout applied to layer inputs
  /// (train-time only, supplied per call).
  GruStack(int num_layers, int input_size, int hidden_size, Rng* rng);

  /// One timestep through every layer.
  /// x: [B, in]; h: per-layer hiddens, each [B, H] (size num_layers).
  /// Returns the new per-layer hiddens; the top entry is the step output.
  /// If `dropout` > 0 and `rng` is non-null, applies inverted dropout to the
  /// inputs of layers 1..L-1.
  std::vector<Var> Step(const Var& x, const std::vector<Var>& h,
                        float dropout = 0.0f, Rng* rng = nullptr) const;

  /// Zero initial hidden state for a batch of the given size.
  std::vector<Var> InitialState(int batch_size) const;

  int num_layers() const { return static_cast<int>(cells_.size()); }
  int hidden_size() const { return hidden_size_; }
  int input_size() const { return input_size_; }

 private:
  int input_size_;
  int hidden_size_;
  std::vector<std::unique_ptr<GruCell>> cells_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_GRU_H_
