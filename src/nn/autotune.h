#ifndef E2DTC_NN_AUTOTUNE_H_
#define E2DTC_NN_AUTOTUNE_H_

#include <string>

#include "nn/kernels.h"
#include "obs/json.h"
#include "util/result.h"
#include "util/status.h"

namespace e2dtc::nn::kernels {

/// Kernel autotuner: a one-shot startup probe that times candidate
/// dispatch parameters (row-panel task height, parallel-dispatch MAC
/// threshold, ParallelFor oversplit factor) on representative GEMM shapes
/// and picks per-shape-class winners for this host. All swept parameters
/// are numerics-neutral — kBlockK and the per-element accumulation order
/// stay fixed — so a tuned build is bitwise identical to the untuned one
/// at any thread count (see the contract in kernels.h).

struct AutotuneOptions {
  /// Timing repetitions per candidate; the minimum is kept.
  int reps = 2;
  /// Target wall time per measurement; iterations are scaled up until one
  /// measurement covers at least this much time.
  double min_sample_ms = 2.0;
  /// Shrinks the representative shapes (~8x fewer MACs) so tests can
  /// exercise the full probe path in well under a second.
  bool quick = false;
};

/// Runs the probe with the currently configured kernel thread count and
/// returns the winning profile (provenance "probe"). Temporarily installs
/// candidate profiles while timing and restores the entry profile before
/// returning; call SetTuningProfile with the result to adopt it. Must not
/// be called concurrently with kernel work (startup / test setup only).
TuningProfile RunAutotuneProbe(const AutotuneOptions& opts = {});

/// Persists `profile` as a JSON per-host cache file (schema
/// "e2dtc.kernel_tuning.v1") via an atomic tmp-write-rename.
Status SaveTuningProfile(const TuningProfile& profile,
                         const std::string& path);

/// Loads and validates a profile cache file. The returned profile carries
/// provenance "cached:<path>". Any schema/shape/validation mismatch is an
/// InvalidArgument; an unreadable file is an IOError.
Result<TuningProfile> LoadTuningProfile(const std::string& path);

/// JSON rendering of a profile (classes, provenance, probe metadata) used
/// by /statusz, the JSONL run report, and the cache file.
obs::Json TuningProfileJson(const TuningProfile& profile);

/// Applies a --kernel-autotune flag value: "off" resets to the built-in
/// defaults, "probe" runs the startup probe and installs the winner,
/// "cached:<path>" loads the cache file if it is readable, otherwise
/// probes and writes the result there for the next run. Anything else is
/// an InvalidArgument.
Status ConfigureAutotune(const std::string& mode);

}  // namespace e2dtc::nn::kernels

#endif  // E2DTC_NN_AUTOTUNE_H_
