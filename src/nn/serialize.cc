#include "nn/serialize.h"

#include <unordered_map>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace e2dtc::nn {

namespace {
constexpr uint32_t kMagic = 0x54443245;  // "E2DT" little-endian
// v1: magic | version | count | params. v2 appends a CRC-32 footer and is
// written atomically (tmp + fsync + rename); v1 files still load.
constexpr uint32_t kVersion = 2;
}  // namespace

Status SaveParameters(const std::string& path,
                      const std::vector<NamedParameter>& params) {
  return AtomicWrite(path, [&](BinaryWriter* w) -> Status {
    E2DTC_RETURN_IF_ERROR(w->WriteU32(kMagic));
    E2DTC_RETURN_IF_ERROR(w->WriteU32(kVersion));
    E2DTC_RETURN_IF_ERROR(w->WriteU32(static_cast<uint32_t>(params.size())));
    for (const auto& p : params) {
      E2DTC_RETURN_IF_ERROR(w->WriteString(p.name));
      const Tensor& t = p.var.value();
      E2DTC_RETURN_IF_ERROR(w->WriteI32(t.rows()));
      E2DTC_RETURN_IF_ERROR(w->WriteI32(t.cols()));
      E2DTC_RETURN_IF_ERROR(w->WriteFloats(t.storage()));
    }
    return w->WriteCrcFooter();
  });
}

Status LoadParameters(const std::string& path,
                      std::vector<NamedParameter>* params) {
  BinaryReader r(path);
  if (!r.Ok()) return Status::IOError("cannot open for reading: " + path);
  E2DTC_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) return Status::IOError("bad checkpoint magic: " + path);
  E2DTC_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != 1 && version != kVersion) {
    return Status::IOError(
        StrFormat("unsupported checkpoint version %u", version));
  }
  E2DTC_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());

  std::unordered_map<std::string, Tensor> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    E2DTC_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    E2DTC_ASSIGN_OR_RETURN(int32_t rows, r.ReadI32());
    E2DTC_ASSIGN_OR_RETURN(int32_t cols, r.ReadI32());
    E2DTC_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadFloats());
    if (rows < 0 || cols < 0 ||
        static_cast<int64_t>(data.size()) !=
            static_cast<int64_t>(rows) * cols) {
      return Status::IOError("corrupt tensor in checkpoint: " + name);
    }
    loaded.emplace(std::move(name), Tensor(rows, cols, std::move(data)));
  }
  // v1 files predate the integrity footer; v2+ must checksum clean.
  if (version >= 2) E2DTC_RETURN_IF_ERROR(r.VerifyCrcFooter());

  if (loaded.size() != params->size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu parameters, model expects %zu", loaded.size(),
        params->size()));
  }
  for (auto& p : *params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p.name);
    }
    if (!it->second.SameShape(p.var.value())) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for %s: checkpoint [%dx%d], model [%dx%d]",
          p.name.c_str(), it->second.rows(), it->second.cols(),
          p.var.value().rows(), p.var.value().cols()));
    }
    p.var.mutable_value() = std::move(it->second);
  }
  return Status::OK();
}

Status SaveModule(const std::string& path, const Module& module) {
  return SaveParameters(path, module.NamedParameters());
}

Status LoadModule(const std::string& path, Module* module) {
  auto params = module->NamedParameters();
  return LoadParameters(path, &params);
}

}  // namespace e2dtc::nn
