#ifndef E2DTC_NN_KERNELS_H_
#define E2DTC_NN_KERNELS_H_

#include <cstdint>
#include <string>

namespace e2dtc {
class ThreadPool;
}

namespace e2dtc::nn::kernels {

/// Compute-kernel layer: cache-blocked, register-tiled, branch-free GEMM
/// variants plus the fused elementwise primitives the GRU/LSTM gates and the
/// loss heads use. Every forward/backward step of the training pipeline
/// funnels through these.
///
/// # Accumulation contract (precision + determinism)
///
/// Every matmul-family output element is computed as
///
///   C[i,j] (+)= (float) sum_over_k_blocks( double( block_partial ) )
///
/// where each block partial accumulates at most kBlockK products in float,
/// in ascending-k order. This unifies the accumulation precision across the
/// whole family (the seed code mixed float- and double-accumulated loops)
/// and pins a *fixed accumulation order per element* that is independent of
/// tiling and thread count: parallelism is over disjoint row panels, so no
/// reduction ever crosses a thread boundary. Consequently results are
/// bitwise identical for any SetNumThreads() value — the property the
/// checkpoint/resume layer (PR 2) relies on. Multiply-accumulate
/// contraction is pinned in source (hardware FMA when the kernel TU is
/// built with it, explicit mul-then-add otherwise) rather than left to
/// -ffp-contract, so vectorized and scalar loops round identically. The
/// contract holds within one build; builds with different ISA flags (see
/// E2DTC_KERNEL_NATIVE) may round differently from each other.
///
/// The Reference* functions implement the same contract as naive,
/// never-threaded triple loops in this same translation unit; the tiled
/// kernels must match them bit-for-bit at every shape and thread count
/// (enforced by tests/tensor_test.cc).

/// Products per float-accumulated k-block. Fixed per build: changing it
/// changes per-element rounding, so the autotuner below never touches it.
inline constexpr int kBlockK = 64;
/// Output rows per register tile (row-panel granularity of parallelism).
inline constexpr int kRowPanel = 8;
/// Output columns per register tile (two 16-float vectors on AVX-512).
inline constexpr int kColPanel = 32;
/// Default multiply-accumulate count below which a matmul runs on the
/// calling thread: ~an L2-resident [64,64]x[64,64] product; parallel
/// dispatch overhead beats the win below this on the machine the constant
/// was picked on. The autotuner overrides it per shape class and host.
inline constexpr int64_t kParallelMinMacs = int64_t{1} << 18;

// ---- Dispatch tuning (autotuner surface) --------------------------------
//
// Matmul-family calls are bucketed into three shape classes by MAC count;
// each class carries independently tunable dispatch parameters. All three
// parameters are numerics-neutral under the accumulation contract above:
// every output element is computed entirely within one task with a fixed
// per-element k order, so changing how rows are grouped into tasks
// (rows_per_task), whether a call splits at all (parallel_min_macs), or how
// chunks map onto workers (oversplit) can never change a single bit of the
// result. Only kBlockK and the per-element order would — and those are
// fixed per build. Tuned and untuned builds are therefore bitwise
// identical at any thread count (asserted by tests/tensor_test.cc and the
// full-epoch determinism case in tests/ckpt_test.cc).

enum class ShapeClass { kSmall = 0, kMedium = 1, kLarge = 2 };
inline constexpr int kNumShapeClasses = 3;
/// Class boundaries in MACs: small < 2^22 (GRU gates at toy batch sizes),
/// medium < 2^26 (production-batch gate GEMMs), large above (attention /
/// vocab-projection scale).
inline constexpr int64_t kSmallClassMaxMacs = int64_t{1} << 22;
inline constexpr int64_t kMediumClassMaxMacs = int64_t{1} << 26;
ShapeClass ClassifyShape(int64_t macs);
/// Stable lower-case name for a shape class ("small"/"medium"/"large").
const char* ShapeClassName(ShapeClass c);

/// Per-shape-class dispatch parameters. Defaults reproduce the pre-tuning
/// hard-coded behavior exactly.
struct ShapeParams {
  /// Rows each parallel task owns; must be a positive multiple of kRowPanel
  /// so task boundaries coincide with register-tile boundaries.
  int rows_per_task = kRowPanel;
  /// Calls with fewer MACs than this stay on the calling thread.
  int64_t parallel_min_macs = kParallelMinMacs;
  /// ThreadPool chunks-per-worker oversplit factor for this class.
  int oversplit = 4;
};

/// The active dispatch-parameter set plus its provenance, surfaced in
/// /statusz and the JSONL run report so benchmark numbers are attributable
/// to a specific profile.
struct TuningProfile {
  ShapeParams classes[kNumShapeClasses];
  /// "default" (built-in constants), "probe" (startup sweep), or
  /// "cached:<path>" (loaded from a per-host profile file).
  std::string provenance = "default";
  /// Wall time the probe took; 0 when no probe ran in this process.
  double probe_ms = 0.0;
  /// Worker count the probe measured with (tuning is thread-count specific
  /// in cost, never in results).
  int probed_threads = 0;
};

/// Installs / reads / clears the process-wide profile. Like SetNumThreads,
/// installation must not race with in-flight kernel calls (configure at
/// startup or test setup). Setting an invalid profile (rows_per_task not a
/// positive multiple of kRowPanel, non-positive threshold or oversplit)
/// aborts via E2DTC_CHECK.
void SetTuningProfile(const TuningProfile& profile);
TuningProfile GetTuningProfile();
void ResetTuningProfile();

/// Worker threads the kernels may use. 1 disables threading; 0 resolves to
/// std::thread::hardware_concurrency(). The pool is created lazily on the
/// first large-enough matmul and rebuilt on count changes. Thread-count
/// changes never change numeric results (see contract above).
void SetNumThreads(int n);
int NumThreads();

/// Always-on dispatch accounting: relaxed atomics bumped once per kernel
/// call (invisible next to the work a call that matters does). Telemetry
/// sites read the totals at phase/epoch boundaries and record deltas —
/// dispatch counts, MAC/FLOP totals, and achieved GFLOP/s — without the
/// metrics switch having to be on. The fused_* fields count the softmax /
/// loss kernels below, which historically ran as scalar loops invisible to
/// per-phase GEMM accounting.
struct DispatchStats {
  uint64_t dispatches = 0;           ///< GEMM-family calls issued.
  uint64_t parallel_dispatches = 0;  ///< GEMM calls split across the pool.
  uint64_t macs = 0;                 ///< GEMM multiply-accumulates.
  uint64_t fused_dispatches = 0;     ///< Fused softmax/loss kernel calls.
  uint64_t fused_parallel_dispatches = 0;  ///< ... split across the pool.
  uint64_t fused_macs = 0;           ///< MAC-equivalents in fused kernels.
};
DispatchStats GetDispatchStats();

/// c[n,m] = a[n,k] * b[k,m], or += when `accumulate`.
void MatmulNN(int n, int k, int m, const float* a, const float* b, float* c,
              bool accumulate);

/// c[n,m] += a^T * b with a stored [k,n], b [k,m] (weight-gradient shape).
void MatmulTN(int n, int k, int m, const float* a, const float* b, float* c);

/// c[n,m] += a * b^T with a stored [n,k], b [m,k] (input-gradient shape).
void MatmulNT(int n, int k, int m, const float* a, const float* b, float* c);

/// Naive same-contract references (never threaded; test oracles).
void ReferenceMatmulNN(int n, int k, int m, const float* a, const float* b,
                       float* c, bool accumulate);
void ReferenceMatmulTN(int n, int k, int m, const float* a, const float* b,
                       float* c);
void ReferenceMatmulNT(int n, int k, int m, const float* a, const float* b,
                       float* c);

/// out[cols,rows] = a^T with a stored [rows,cols]. Blocked copy, exact.
void Transpose(const float* a, int rows, int cols, float* out);

/// Dot product under the same k-block accumulation contract; returns the
/// double cross-block sum (callers keep full precision as long as useful).
double Dot(const float* a, const float* b, int64_t n);

/// sum((a[i]-b[i])^2) under the same k-block accumulation contract.
double SquaredDistance(const float* a, const float* b, int64_t n);

/// y[i] += alpha * x[i].
void Axpy(float alpha, const float* x, float* y, int64_t n);

/// c[r,:] += bias[0,:] for every row; c is [rows,cols] row-major.
void AddBiasRow(float* c, const float* bias, int rows, int cols);

/// dst[0,j] += sum_r g[r,j] (row-broadcast gradient reduction). Rows are
/// accumulated in ascending order — deterministic.
void ColumnSumAdd(const float* g, int rows, int cols, float* dst);

/// Elementwise logistic sigmoid / tanh forward and their fused backward
/// accumulations (dx[i] += dfn(y[i]) * g[i]). Branch-free loops over raw
/// pointers; replaces the per-element std::function dispatch the autograd
/// UnaryOp helper pays.
void SigmoidForward(const float* x, float* y, int64_t n);
void SigmoidBackwardAdd(const float* y, const float* g, float* dx, int64_t n);
void TanhForward(const float* x, float* y, int64_t n);
void TanhBackwardAdd(const float* y, const float* g, float* dx, int64_t n);

// ---- Fused softmax / loss kernels ---------------------------------------
//
// Row-parallel softmax and the fused gather-dot-softmax-scatter kernel
// behind KnnProximityLoss. Rows (respectively samples) are independent, so
// parallelism never crosses a reduction: results are bitwise identical at
// any thread count and to the serial Reference* oracles below. Per-row
// denominators accumulate in double after a max-subtraction, matching the
// scalar loops these kernels replaced bit for bit.

/// y[r,:] = softmax(x[r,:]) per row with max-subtraction; x, y are
/// [rows,cols] row-major and may alias.
void SoftmaxRowsForward(const float* x, float* y, int rows, int cols);

/// dx[r,j] += y[r,j] * (g[r,j] - sum_k g[r,k]*y[r,k]), the softmax Jacobian
/// action; the per-row dot accumulates in double in ascending column order.
void SoftmaxRowsBackwardAdd(const float* y, const float* g, float* dx,
                            int rows, int cols);

/// dx[r,j] += scale * (probs[r,j] - [j == targets[r]]): the cross-entropy
/// gradient through a row softmax. `scale` is the upstream scalar gradient
/// already divided by the row count.
void SoftmaxXentBackwardAdd(const float* probs, const int* targets,
                            float scale, float* dx, int rows, int cols);

/// Fused Eq. 8 KNN-proximity loss forward: for each sample i the k
/// candidate logits b[idx]+<w[idx,:],h[i,:]> are computed as panel-shaped
/// Dot blocks (kRowPanel independent accumulator chains under the standard
/// k-block contract — bitwise equal to per-candidate kernels::Dot), then a
/// per-sample log-softmax. Writes the [n,k] probabilities to `probs` and
/// returns the total loss: per-sample double partials summed serially in
/// ascending sample order, so the value is independent of the parallel
/// partition. h is [n,hidden], w [vocab,hidden], b [vocab], indices and
/// weights [n,k] row-major.
double KnnLossForward(const float* h, const float* w, const float* b,
                      const int* indices, const float* weights, int n, int k,
                      int hidden, float* probs);

/// Backward of the above: dlogit = g*(probs-weights) routed into dh (+=
/// dlogit*w rows, parallel over samples), and into dw/db via a cell-grouped
/// inverted index that replays the serial ascending-(sample,candidate)
/// accumulation order per vocabulary row — bitwise identical to the serial
/// reference at any thread count. Any of dh/dw/db may be null to skip that
/// gradient.
void KnnLossBackwardAdd(const float* h, const float* w, const int* indices,
                        const float* weights, const float* probs, float g,
                        int n, int k, int hidden, float* dh, float* dw,
                        float* db);

/// Serial same-contract references (never threaded; test oracles).
void ReferenceSoftmaxRowsForward(const float* x, float* y, int rows,
                                 int cols);
void ReferenceSoftmaxRowsBackwardAdd(const float* y, const float* g,
                                     float* dx, int rows, int cols);
double ReferenceKnnLossForward(const float* h, const float* w, const float* b,
                               const int* indices, const float* weights,
                               int n, int k, int hidden, float* probs);
void ReferenceKnnLossBackwardAdd(const float* h, const float* w,
                                 const int* indices, const float* weights,
                                 const float* probs, float g, int n, int k,
                                 int hidden, float* dh, float* dw, float* db);

}  // namespace e2dtc::nn::kernels

#endif  // E2DTC_NN_KERNELS_H_
