#ifndef E2DTC_NN_KERNELS_H_
#define E2DTC_NN_KERNELS_H_

#include <cstdint>

namespace e2dtc {
class ThreadPool;
}

namespace e2dtc::nn::kernels {

/// Compute-kernel layer: cache-blocked, register-tiled, branch-free GEMM
/// variants plus the fused elementwise primitives the GRU/LSTM gates and the
/// loss heads use. Every forward/backward step of the training pipeline
/// funnels through these.
///
/// # Accumulation contract (precision + determinism)
///
/// Every matmul-family output element is computed as
///
///   C[i,j] (+)= (float) sum_over_k_blocks( double( block_partial ) )
///
/// where each block partial accumulates at most kBlockK products in float,
/// in ascending-k order. This unifies the accumulation precision across the
/// whole family (the seed code mixed float- and double-accumulated loops)
/// and pins a *fixed accumulation order per element* that is independent of
/// tiling and thread count: parallelism is over disjoint row panels, so no
/// reduction ever crosses a thread boundary. Consequently results are
/// bitwise identical for any SetNumThreads() value — the property the
/// checkpoint/resume layer (PR 2) relies on. Multiply-accumulate
/// contraction is pinned in source (hardware FMA when the kernel TU is
/// built with it, explicit mul-then-add otherwise) rather than left to
/// -ffp-contract, so vectorized and scalar loops round identically. The
/// contract holds within one build; builds with different ISA flags (see
/// E2DTC_KERNEL_NATIVE) may round differently from each other.
///
/// The Reference* functions implement the same contract as naive,
/// never-threaded triple loops in this same translation unit; the tiled
/// kernels must match them bit-for-bit at every shape and thread count
/// (enforced by tests/tensor_test.cc).

/// Products per float-accumulated k-block.
inline constexpr int kBlockK = 64;
/// Output rows per register tile (row-panel granularity of parallelism).
inline constexpr int kRowPanel = 8;
/// Output columns per register tile (two 16-float vectors on AVX-512).
inline constexpr int kColPanel = 32;
/// Multiply-accumulate count below which a matmul always runs on the
/// calling thread: ~an L2-resident [64,64]x[64,64] product; parallel
/// dispatch overhead beats the win below this.
inline constexpr int64_t kParallelMinMacs = int64_t{1} << 18;

/// Worker threads the kernels may use. 1 disables threading; 0 resolves to
/// std::thread::hardware_concurrency(). The pool is created lazily on the
/// first large-enough matmul and rebuilt on count changes. Thread-count
/// changes never change numeric results (see contract above).
void SetNumThreads(int n);
int NumThreads();

/// Always-on dispatch accounting: three relaxed atomics bumped once per
/// matmul-family call (invisible next to the >= kParallelMinMacs of work a
/// call that matters does). Telemetry sites read the totals at phase/epoch
/// boundaries and record deltas — dispatch counts, MAC/FLOP totals, and
/// achieved GFLOP/s — without the metrics switch having to be on.
struct DispatchStats {
  uint64_t dispatches = 0;           ///< GEMM-family calls issued.
  uint64_t parallel_dispatches = 0;  ///< Calls split across the pool.
  uint64_t macs = 0;                 ///< Total multiply-accumulates.
};
DispatchStats GetDispatchStats();

/// c[n,m] = a[n,k] * b[k,m], or += when `accumulate`.
void MatmulNN(int n, int k, int m, const float* a, const float* b, float* c,
              bool accumulate);

/// c[n,m] += a^T * b with a stored [k,n], b [k,m] (weight-gradient shape).
void MatmulTN(int n, int k, int m, const float* a, const float* b, float* c);

/// c[n,m] += a * b^T with a stored [n,k], b [m,k] (input-gradient shape).
void MatmulNT(int n, int k, int m, const float* a, const float* b, float* c);

/// Naive same-contract references (never threaded; test oracles).
void ReferenceMatmulNN(int n, int k, int m, const float* a, const float* b,
                       float* c, bool accumulate);
void ReferenceMatmulTN(int n, int k, int m, const float* a, const float* b,
                       float* c);
void ReferenceMatmulNT(int n, int k, int m, const float* a, const float* b,
                       float* c);

/// out[cols,rows] = a^T with a stored [rows,cols]. Blocked copy, exact.
void Transpose(const float* a, int rows, int cols, float* out);

/// Dot product under the same k-block accumulation contract; returns the
/// double cross-block sum (callers keep full precision as long as useful).
double Dot(const float* a, const float* b, int64_t n);

/// sum((a[i]-b[i])^2) under the same k-block accumulation contract.
double SquaredDistance(const float* a, const float* b, int64_t n);

/// y[i] += alpha * x[i].
void Axpy(float alpha, const float* x, float* y, int64_t n);

/// c[r,:] += bias[0,:] for every row; c is [rows,cols] row-major.
void AddBiasRow(float* c, const float* bias, int rows, int cols);

/// dst[0,j] += sum_r g[r,j] (row-broadcast gradient reduction). Rows are
/// accumulated in ascending order — deterministic.
void ColumnSumAdd(const float* g, int rows, int cols, float* dst);

/// Elementwise logistic sigmoid / tanh forward and their fused backward
/// accumulations (dx[i] += dfn(y[i]) * g[i]). Branch-free loops over raw
/// pointers; replaces the per-element std::function dispatch the autograd
/// UnaryOp helper pays.
void SigmoidForward(const float* x, float* y, int64_t n);
void SigmoidBackwardAdd(const float* y, const float* g, float* dx, int64_t n);
void TanhForward(const float* x, float* y, int64_t n);
void TanhBackwardAdd(const float* y, const float* g, float* dx, int64_t n);

}  // namespace e2dtc::nn::kernels

#endif  // E2DTC_NN_KERNELS_H_
