#ifndef E2DTC_NN_LOSSES_H_
#define E2DTC_NN_LOSSES_H_

#include <vector>

#include "nn/autograd.h"

namespace e2dtc::nn {

/// Per-sample candidate sets for the KNN-restricted spatial-proximity loss
/// (paper Eq. 8). Row i of a [n, H] hidden batch is scored only against its
/// k candidate cells; `weights` carries the proximity weights w (each row
/// sums to 1, the true target's weight dominating).
struct KnnCandidates {
  int k = 0;
  std::vector<int> indices;    ///< n*k flattened vocabulary ids.
  std::vector<float> weights;  ///< n*k flattened, row-stochastic.

  int num_samples() const {
    return k == 0 ? 0 : static_cast<int>(indices.size()) / k;
  }
};

/// Spatial-proximity-aware cross entropy restricted to each target's k
/// nearest cells (Eq. 8):  L = -sum_i sum_c w_ic log softmax_c(W h_i + b).
/// Returns the [1,1] sum over samples (callers normalize by token count).
///
/// h: [n, H] decoder hiddens (one row per valid target position);
/// proj_weight: [V, H]; proj_bias: [V, 1].
/// Gradients flow into h, proj_weight, and proj_bias.
Var KnnProximityLoss(const Var& h, const Var& proj_weight,
                     const Var& proj_bias, const KnnCandidates& cand);

/// Plain mean softmax cross entropy over full rows.
/// logits: [n, C]; targets: n class ids.
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& targets);

/// Student's-t soft cluster assignment (Eq. 9): q_ij proportional to
/// (1 + ||v_i - c_j||^2 / alpha)^-(alpha+1)/2 with alpha = 1 (the paper's
/// kernel). v: [B, H]; centroids: [k, H]; returns [B, k] rows summing to 1.
Var StudentTAssignment(const Var& v, const Var& centroids);

/// Plain-tensor version for full-dataset evaluation (no gradients).
Tensor StudentTAssignmentValue(const Tensor& v, const Tensor& centroids);

/// Auxiliary target distribution (Eq. 10): p_ij = (q_ij^2 / f_j) normalized
/// per row, with f_j the soft cluster frequency sum_i q_ij.
Tensor TargetDistribution(const Tensor& q);

/// KL(P || Q) = sum_ij p_ij log(p_ij / q_ij) (Eq. 11); p is a constant,
/// gradients flow through q. Returns the [1,1] sum (not mean).
Var KlDivergence(const Tensor& p, const Var& q);

/// Triplet margin loss (Eq. 13), mean over the batch:
///   mean(relu(||a-p||^2 - ||a-n||^2 + margin)).
Var TripletLoss(const Var& anchor, const Var& positive, const Var& negative,
                float margin);

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_LOSSES_H_
