#ifndef E2DTC_NN_AUTOGRAD_H_
#define E2DTC_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace e2dtc {
class Rng;
}

namespace e2dtc::nn {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the dynamic computation graph: a value, its gradient, and a
/// closure that routes the gradient to the inputs. Users interact through the
/// Var handle below; Node is exposed for optimizers and custom ops.
class Node {
 public:
  Tensor value;
  Tensor grad;  ///< Same shape as value once EnsureGrad() has run; else empty.
  bool requires_grad = false;
  std::vector<NodePtr> inputs;
  /// Accumulates d(loss)/d(input) into each input's grad, reading this->grad.
  /// Null for leaves.
  std::function<void(Node*)> backward_fn;
  std::string name;  ///< Non-empty for named parameters; aids debugging.

  /// Sizes grad to match value (zero-filled) if not already sized.
  void EnsureGrad();

  /// Zeroes the gradient (keeps allocation).
  void ZeroGrad();
};

/// Value-semantics handle to a graph node. Copying a Var copies the handle,
/// not the tensor. Ops below build the graph; Backward() runs reverse-mode
/// accumulation from a scalar root.
class Var {
 public:
  Var() = default;
  explicit Var(NodePtr node) : node_(std::move(node)) {}

  /// A trainable leaf (parameter) or input requiring gradients.
  static Var Leaf(Tensor value, bool requires_grad, std::string name = "");

  /// A constant leaf (no gradient is ever accumulated into it).
  static Var Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Tensor& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  const NodePtr& node() const { return node_; }

  /// A constant copy of this Var's value (gradient flow stops here).
  Var Detach() const { return Constant(node_->value); }

 private:
  NodePtr node_;
};

/// Runs reverse-mode accumulation from `root`, which must be a [1,1] scalar.
/// Gradients accumulate into every reachable node with requires_grad; call
/// Optimizer::ZeroGrad (or Node::ZeroGrad) between steps.
void Backward(const Var& root);

// ---------------------------------------------------------------------------
// Differentiable ops. Binary elementwise ops support three shape modes:
// identical shapes; b = [1, m] (row broadcast across rows of a); and
// b = [n, 1] (column broadcast across columns of a).
// ---------------------------------------------------------------------------

/// Matrix product [n,k] x [k,m] -> [n,m].
Var Matmul(const Var& a, const Var& b);

/// Fused affine map x [n,k] * w [k,m] + b [1,m] (bias broadcast across
/// rows) as ONE graph node. Forward and backward run entirely on the
/// kernel layer (nn/kernels.h); compared with Matmul+Add this skips a
/// full [n,m] temporary and an extra backward pass over it.
Var Affine(const Var& x, const Var& w, const Var& b);

/// Fused RNN-gate pre-activation x*wx + bx + h*wh + bh as ONE graph node
/// ([n,m] output; both biases [1,m]). The second product accumulates
/// directly into the first's output — no intermediate gate tensors.
Var DualAffine(const Var& x, const Var& wx, const Var& bx, const Var& h,
               const Var& wh, const Var& bh);

/// Transpose [n,m] -> [m,n].
Var Transpose(const Var& a);

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
/// Elementwise division; b may be [n,1] or [1,m] broadcast.
Var Div(const Var& a, const Var& b);

Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
Var Neg(const Var& a);

Var Exp(const Var& a);
/// Natural log; inputs are clamped to >= eps for numeric safety.
Var Log(const Var& a, float eps = 1e-12f);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var Square(const Var& a);
/// Elementwise 1/x.
Var Reciprocal(const Var& a);
/// Elementwise sqrt (inputs clamped to >= eps).
Var Sqrt(const Var& a, float eps = 1e-12f);

/// Sum of all entries -> [1,1].
Var Sum(const Var& a);
/// Mean of all entries -> [1,1].
Var Mean(const Var& a);
/// Row sums [n,m] -> [n,1].
Var RowSum(const Var& a);

/// Columns [begin, begin+count) as a new [n,count] Var.
Var SliceCols(const Var& a, int begin, int count);

/// Vertical concatenation of equal-width blocks.
Var ConcatRows(const std::vector<Var>& parts);

/// Embedding lookup: rows of `table` [V,m] selected by `indices` (size n)
/// -> [n,m]. Backward scatter-adds into the selected rows.
Var GatherRows(const Var& table, std::vector<int> indices);

/// Inverted-dropout: with probability `rate` an entry is zeroed, survivors
/// are scaled by 1/(1-rate). `rate` == 0 returns `a` unchanged.
Var Dropout(const Var& a, float rate, Rng* rng);

/// Row-wise softmax with max-subtraction for stability.
Var SoftmaxRows(const Var& a);

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_AUTOGRAD_H_
