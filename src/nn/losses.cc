#include "nn/losses.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/kernels.h"

namespace e2dtc::nn {

namespace {

NodePtr MakeLossNode(Tensor value, std::vector<NodePtr> inputs,
                     std::function<void(Node*)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->inputs = std::move(inputs);
  for (const auto& in : node->inputs) {
    if (in->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) node->backward_fn = std::move(backward);
  return node;
}

}  // namespace

Var KnnProximityLoss(const Var& h, const Var& proj_weight,
                     const Var& proj_bias, const KnnCandidates& cand) {
  const int n = cand.num_samples();
  const int k = cand.k;
  E2DTC_CHECK_GT(k, 0);
  E2DTC_CHECK_EQ(h.rows(), n);
  E2DTC_CHECK_EQ(cand.indices.size(), cand.weights.size());
  E2DTC_CHECK_EQ(proj_weight.cols(), h.cols());
  E2DTC_CHECK_EQ(proj_bias.rows(), proj_weight.rows());
  E2DTC_CHECK_EQ(proj_bias.cols(), 1);

  const Tensor& hv = h.value();
  const Tensor& wv = proj_weight.value();
  const Tensor& bv = proj_bias.value();
  const int hidden = hv.cols();

  // Forward: per-sample softmax over the k candidates.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n) * k);
  double total = 0.0;
  std::vector<float> logits(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    const float* hrow = hv.row(i);
    float mx = -1e30f;
    for (int c = 0; c < k; ++c) {
      const int cell = cand.indices[static_cast<size_t>(i) * k + c];
      const float* wrow = wv.row(cell);
      const double dot = bv.at(cell, 0) + kernels::Dot(wrow, hrow, hidden);
      logits[static_cast<size_t>(c)] = static_cast<float>(dot);
      mx = std::max(mx, logits[static_cast<size_t>(c)]);
    }
    double denom = 0.0;
    for (int c = 0; c < k; ++c) {
      denom += std::exp(logits[static_cast<size_t>(c)] - mx);
    }
    const double log_denom = std::log(denom) + mx;
    for (int c = 0; c < k; ++c) {
      const double logp = logits[static_cast<size_t>(c)] - log_denom;
      (*probs)[static_cast<size_t>(i) * k + c] =
          static_cast<float>(std::exp(logp));
      total -= cand.weights[static_cast<size_t>(i) * k + c] * logp;
    }
  }

  // Backward: dlogit_ic = g * (p_ic - w_ic); route into h, W rows, b rows.
  auto indices = std::make_shared<std::vector<int>>(cand.indices);
  auto weights = std::make_shared<std::vector<float>>(cand.weights);
  auto backward = [probs, indices, weights, n, k, hidden](Node* node) {
    const float g = node->grad.scalar();
    Node* h_in = node->inputs[0].get();
    Node* w_in = node->inputs[1].get();
    Node* b_in = node->inputs[2].get();
    const bool need_h = h_in->requires_grad;
    const bool need_w = w_in->requires_grad;
    const bool need_b = b_in->requires_grad;
    if (need_h) h_in->EnsureGrad();
    if (need_w) w_in->EnsureGrad();
    if (need_b) b_in->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      const float* hrow = h_in->value.row(i);
      float* hgrad = need_h ? h_in->grad.row(i) : nullptr;
      for (int c = 0; c < k; ++c) {
        const size_t flat = static_cast<size_t>(i) * k + c;
        const float dlogit = g * ((*probs)[flat] - (*weights)[flat]);
        if (dlogit == 0.0f) continue;
        const int cell = (*indices)[flat];
        const float* wrow = w_in->value.row(cell);
        if (need_h) kernels::Axpy(dlogit, wrow, hgrad, hidden);
        if (need_w) {
          kernels::Axpy(dlogit, hrow, w_in->grad.row(cell), hidden);
        }
        if (need_b) b_in->grad.at(cell, 0) += dlogit;
      }
    }
  };
  return Var(MakeLossNode(Tensor::Scalar(static_cast<float>(total)),
                          {h.node(), proj_weight.node(), proj_bias.node()},
                          backward));
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& targets) {
  const int n = logits.rows();
  const int c = logits.cols();
  E2DTC_CHECK_EQ(static_cast<int>(targets.size()), n);
  const Tensor& lv = logits.value();

  auto probs = std::make_shared<Tensor>(n, c);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* r = lv.row(i);
    float mx = r[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, r[j]);
    double denom = 0.0;
    float* p = probs->row(i);
    for (int j = 0; j < c; ++j) {
      p[j] = std::exp(r[j] - mx);
      denom += p[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < c; ++j) p[j] *= inv;
    const int t = targets[static_cast<size_t>(i)];
    E2DTC_CHECK(t >= 0 && t < c);
    total -= std::log(std::max(1e-12, static_cast<double>(p[t])));
  }
  total /= n;

  auto tgt = std::make_shared<std::vector<int>>(targets);
  auto backward = [probs, tgt, n, c](Node* node) {
    Node* in = node->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    const float g = node->grad.scalar() / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      const float* p = probs->row(i);
      float* d = in->grad.row(i);
      const int t = (*tgt)[static_cast<size_t>(i)];
      for (int j = 0; j < c; ++j) {
        d[j] += g * (p[j] - (j == t ? 1.0f : 0.0f));
      }
    }
  };
  return Var(MakeLossNode(Tensor::Scalar(static_cast<float>(total)),
                          {logits.node()}, backward));
}

Var StudentTAssignment(const Var& v, const Var& centroids) {
  E2DTC_CHECK_EQ(v.cols(), centroids.cols());
  // d2_ij = ||v_i||^2 + ||c_j||^2 - 2 v_i . c_j, clamped at 0.
  Var cross = Matmul(v, Transpose(centroids));           // [B, k]
  Var sq_v = RowSum(Square(v));                          // [B, 1]
  Var sq_c = Transpose(RowSum(Square(centroids)));       // [1, k]
  Var d2 = Relu(Add(Add(MulScalar(cross, -2.0f), sq_c), sq_v));
  Var kernel = Reciprocal(AddScalar(d2, 1.0f));          // (1 + d2)^-1
  return Div(kernel, RowSum(kernel));
}

Tensor StudentTAssignmentValue(const Tensor& v, const Tensor& centroids) {
  E2DTC_CHECK_EQ(v.cols(), centroids.cols());
  const int n = v.rows();
  const int k = centroids.rows();
  Tensor q(n, k);
  for (int i = 0; i < n; ++i) {
    const float* vi = v.row(i);
    double denom = 0.0;
    float* qi = q.row(i);
    for (int j = 0; j < k; ++j) {
      const double d2 = kernels::SquaredDistance(vi, centroids.row(j),
                                                 v.cols());
      qi[j] = static_cast<float>(1.0 / (1.0 + d2));
      denom += qi[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < k; ++j) qi[j] *= inv;
  }
  return q;
}

Tensor TargetDistribution(const Tensor& q) {
  const int n = q.rows();
  const int k = q.cols();
  std::vector<double> freq(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* qi = q.row(i);
    for (int j = 0; j < k; ++j) freq[static_cast<size_t>(j)] += qi[j];
  }
  Tensor p(n, k);
  for (int i = 0; i < n; ++i) {
    const float* qi = q.row(i);
    float* pi = p.row(i);
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      const double fj = std::max(freq[static_cast<size_t>(j)], 1e-12);
      pi[j] = static_cast<float>(static_cast<double>(qi[j]) * qi[j] / fj);
      denom += pi[j];
    }
    const float inv = static_cast<float>(1.0 / std::max(denom, 1e-12));
    for (int j = 0; j < k; ++j) pi[j] *= inv;
  }
  return p;
}

Var KlDivergence(const Tensor& p, const Var& q) {
  E2DTC_CHECK(p.SameShape(q.value()));
  // sum p log p (constant) - sum p log q (differentiable).
  double const_term = 0.0;
  for (int64_t i = 0; i < p.size(); ++i) {
    const double pi = p.data()[i];
    if (pi > 1e-12) const_term += pi * std::log(pi);
  }
  Var cross = Sum(Mul(Log(q), Var::Constant(p)));
  return AddScalar(Neg(cross), static_cast<float>(const_term));
}

Var TripletLoss(const Var& anchor, const Var& positive, const Var& negative,
                float margin) {
  Var dp = RowSum(Square(Sub(anchor, positive)));  // [B,1]
  Var dn = RowSum(Square(Sub(anchor, negative)));  // [B,1]
  return Mean(Relu(AddScalar(Sub(dp, dn), margin)));
}

}  // namespace e2dtc::nn
