#include "nn/losses.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/kernels.h"

namespace e2dtc::nn {

namespace {

NodePtr MakeLossNode(Tensor value, std::vector<NodePtr> inputs,
                     std::function<void(Node*)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->inputs = std::move(inputs);
  for (const auto& in : node->inputs) {
    if (in->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) node->backward_fn = std::move(backward);
  return node;
}

}  // namespace

Var KnnProximityLoss(const Var& h, const Var& proj_weight,
                     const Var& proj_bias, const KnnCandidates& cand) {
  const int n = cand.num_samples();
  const int k = cand.k;
  E2DTC_CHECK_GT(k, 0);
  E2DTC_CHECK_EQ(h.rows(), n);
  E2DTC_CHECK_EQ(cand.indices.size(), cand.weights.size());
  E2DTC_CHECK_EQ(proj_weight.cols(), h.cols());
  E2DTC_CHECK_EQ(proj_bias.rows(), proj_weight.rows());
  E2DTC_CHECK_EQ(proj_bias.cols(), 1);

  const Tensor& hv = h.value();
  const Tensor& wv = proj_weight.value();
  const Tensor& bv = proj_bias.value();
  const int hidden = hv.cols();

  // Forward: fused gather-dot-softmax kernel (panel-shaped candidate dots,
  // sample-parallel, fixed reduction order — see kernels.h).
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n) * k);
  const double total = kernels::KnnLossForward(
      hv.data(), wv.data(), bv.data(), cand.indices.data(),
      cand.weights.data(), n, k, hidden, probs->data());

  // Backward: dlogit_ic = g * (p_ic - w_ic); route into h, W rows, b rows.
  auto indices = std::make_shared<std::vector<int>>(cand.indices);
  auto weights = std::make_shared<std::vector<float>>(cand.weights);
  auto backward = [probs, indices, weights, n, k, hidden](Node* node) {
    const float g = node->grad.scalar();
    Node* h_in = node->inputs[0].get();
    Node* w_in = node->inputs[1].get();
    Node* b_in = node->inputs[2].get();
    const bool need_h = h_in->requires_grad;
    const bool need_w = w_in->requires_grad;
    const bool need_b = b_in->requires_grad;
    if (need_h) h_in->EnsureGrad();
    if (need_w) w_in->EnsureGrad();
    if (need_b) b_in->EnsureGrad();
    kernels::KnnLossBackwardAdd(
        h_in->value.data(), w_in->value.data(), indices->data(),
        weights->data(), probs->data(), g, n, k, hidden,
        need_h ? h_in->grad.data() : nullptr,
        need_w ? w_in->grad.data() : nullptr,
        need_b ? b_in->grad.data() : nullptr);
  };
  return Var(MakeLossNode(Tensor::Scalar(static_cast<float>(total)),
                          {h.node(), proj_weight.node(), proj_bias.node()},
                          backward));
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& targets) {
  const int n = logits.rows();
  const int c = logits.cols();
  E2DTC_CHECK_EQ(static_cast<int>(targets.size()), n);
  const Tensor& lv = logits.value();

  auto probs = std::make_shared<Tensor>(n, c);
  kernels::SoftmaxRowsForward(lv.data(), probs->data(), n, c);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const int t = targets[static_cast<size_t>(i)];
    E2DTC_CHECK(t >= 0 && t < c);
    total -= std::log(
        std::max(1e-12, static_cast<double>(probs->at(i, t))));
  }
  total /= n;

  auto tgt = std::make_shared<std::vector<int>>(targets);
  auto backward = [probs, tgt, n, c](Node* node) {
    Node* in = node->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    const float g = node->grad.scalar() / static_cast<float>(n);
    kernels::SoftmaxXentBackwardAdd(probs->data(), tgt->data(), g,
                                    in->grad.data(), n, c);
  };
  return Var(MakeLossNode(Tensor::Scalar(static_cast<float>(total)),
                          {logits.node()}, backward));
}

Var StudentTAssignment(const Var& v, const Var& centroids) {
  E2DTC_CHECK_EQ(v.cols(), centroids.cols());
  // d2_ij = ||v_i||^2 + ||c_j||^2 - 2 v_i . c_j, clamped at 0.
  Var cross = Matmul(v, Transpose(centroids));           // [B, k]
  Var sq_v = RowSum(Square(v));                          // [B, 1]
  Var sq_c = Transpose(RowSum(Square(centroids)));       // [1, k]
  Var d2 = Relu(Add(Add(MulScalar(cross, -2.0f), sq_c), sq_v));
  Var kernel = Reciprocal(AddScalar(d2, 1.0f));          // (1 + d2)^-1
  return Div(kernel, RowSum(kernel));
}

Tensor StudentTAssignmentValue(const Tensor& v, const Tensor& centroids) {
  E2DTC_CHECK_EQ(v.cols(), centroids.cols());
  const int n = v.rows();
  const int k = centroids.rows();
  Tensor q(n, k);
  for (int i = 0; i < n; ++i) {
    const float* vi = v.row(i);
    double denom = 0.0;
    float* qi = q.row(i);
    for (int j = 0; j < k; ++j) {
      const double d2 = kernels::SquaredDistance(vi, centroids.row(j),
                                                 v.cols());
      qi[j] = static_cast<float>(1.0 / (1.0 + d2));
      denom += qi[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < k; ++j) qi[j] *= inv;
  }
  return q;
}

Tensor TargetDistribution(const Tensor& q) {
  const int n = q.rows();
  const int k = q.cols();
  std::vector<double> freq(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* qi = q.row(i);
    for (int j = 0; j < k; ++j) freq[static_cast<size_t>(j)] += qi[j];
  }
  Tensor p(n, k);
  for (int i = 0; i < n; ++i) {
    const float* qi = q.row(i);
    float* pi = p.row(i);
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      const double fj = std::max(freq[static_cast<size_t>(j)], 1e-12);
      pi[j] = static_cast<float>(static_cast<double>(qi[j]) * qi[j] / fj);
      denom += pi[j];
    }
    const float inv = static_cast<float>(1.0 / std::max(denom, 1e-12));
    for (int j = 0; j < k; ++j) pi[j] *= inv;
  }
  return p;
}

Var KlDivergence(const Tensor& p, const Var& q) {
  E2DTC_CHECK(p.SameShape(q.value()));
  // sum p log p (constant) - sum p log q (differentiable).
  double const_term = 0.0;
  for (int64_t i = 0; i < p.size(); ++i) {
    const double pi = p.data()[i];
    if (pi > 1e-12) const_term += pi * std::log(pi);
  }
  Var cross = Sum(Mul(Log(q), Var::Constant(p)));
  return AddScalar(Neg(cross), static_cast<float>(const_term));
}

Var TripletLoss(const Var& anchor, const Var& positive, const Var& negative,
                float margin) {
  Var dp = RowSum(Square(Sub(anchor, positive)));  // [B,1]
  Var dn = RowSum(Square(Sub(anchor, negative)));  // [B,1]
  return Mean(Relu(AddScalar(Sub(dp, dn), margin)));
}

}  // namespace e2dtc::nn
