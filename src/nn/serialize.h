#ifndef E2DTC_NN_SERIALIZE_H_
#define E2DTC_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace e2dtc::nn {

/// Saves named parameters as a versioned little-endian binary checkpoint:
///   magic "E2DT" | version u32 | count u32 | per-param:
///   name | rows i32 | cols i32 | floats.
Status SaveParameters(const std::string& path,
                      const std::vector<NamedParameter>& params);

/// Loads a checkpoint into `params`, matched by name. Every parameter in
/// `params` must appear in the file with an identical shape; extra entries
/// in the file are an error (guards against loading a mismatched model).
Status LoadParameters(const std::string& path,
                      std::vector<NamedParameter>* params);

/// Convenience overloads operating on a Module's parameter tree.
Status SaveModule(const std::string& path, const Module& module);
Status LoadModule(const std::string& path, Module* module);

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_SERIALIZE_H_
