#ifndef E2DTC_NN_LINALG_H_
#define E2DTC_NN_LINALG_H_

#include "nn/tensor.h"
#include "util/result.h"

namespace e2dtc::nn {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors as columns of an [n, n] tensor, ordered to match values.
  Tensor vectors;
};

/// Cyclic Jacobi eigendecomposition for symmetric matrices. Robust and
/// simple: O(n^3) per sweep, converging quadratically; intended for the
/// moderate sizes the library needs (spectral clustering Laplacians of a
/// few thousand points, PCA covariances of a few hundred dimensions).
/// Errors if `a` is not square or not (numerically) symmetric.
Result<EigenDecomposition> SymmetricEigen(const Tensor& a,
                                          int max_sweeps = 64,
                                          double tolerance = 1e-10);

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_LINALG_H_
