#ifndef E2DTC_NN_MODULE_H_
#define E2DTC_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.h"

namespace e2dtc::nn {

/// Named parameter handle.
struct NamedParameter {
  std::string name;
  Var var;
};

/// Base class for trainable components. A Module owns its parameter leaves
/// and can reference (non-owning) submodules; Parameters() flattens the tree
/// for optimizers, NamedParameters() for serialization.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first (this module's own first).
  std::vector<Var> Parameters() const;

  /// All parameters with hierarchical names ("encoder.cell0.wx").
  std::vector<NamedParameter> NamedParameters() const;

  /// Total number of trainable scalars.
  int64_t ParameterCount() const;

 protected:
  Module() = default;

  /// Registers a trainable leaf with the given local name.
  Var AddParameter(const std::string& name, Tensor init);

  /// Registers a child module under `name`. The child must outlive `this`
  /// (typical use: child is a data member of the subclass).
  void AddSubmodule(const std::string& name, Module* child);

 private:
  void Collect(const std::string& prefix,
               std::vector<NamedParameter>* out) const;

  std::vector<NamedParameter> own_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

/// Fully connected layer: y = x W + b with W [in,out], b [1,out].
class Linear : public Module {
 public:
  /// Xavier-initialized weights; zero bias (if `bias`).
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// x: [B, in] -> [B, out].
  Var Forward(const Var& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Var weight_;
  Var bias_;  // undefined when constructed with bias = false
};

/// Token embedding table [vocab, dim].
class Embedding : public Module {
 public:
  /// Gaussian(0, 0.1) initialization.
  Embedding(int vocab_size, int dim, Rng* rng);

  /// indices (size n) -> [n, dim].
  Var Forward(std::vector<int> indices) const;

  /// Overwrites the table (e.g. with pre-trained skip-gram vectors).
  /// `table` must be [vocab, dim].
  void LoadTable(const Tensor& table);

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const Var& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  Var table_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_MODULE_H_
