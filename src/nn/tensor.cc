#include "nn/tensor.h"

#include <cmath>
#include <cstring>

#include "nn/kernels.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace e2dtc::nn {

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  E2DTC_CHECK(rows >= 0 && cols >= 0);
}

Tensor::Tensor(int rows, int cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  E2DTC_CHECK(rows >= 0 && cols >= 0);
  E2DTC_CHECK_EQ(static_cast<int64_t>(data_.size()),
                 static_cast<int64_t>(rows) * cols);
}

Tensor Tensor::Scalar(float v) { return Tensor(1, 1, {v}); }

Tensor Tensor::Uniform(int rows, int cols, float limit, Rng* rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Uniform(-limit, limit));
  }
  return t;
}

Tensor Tensor::Gaussian(int rows, int cols, float stddev, Rng* rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(int fan_in, int fan_out, Rng* rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Uniform(fan_in, fan_out, limit, rng);
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::Add(const Tensor& other) {
  E2DTC_CHECK(SameShape(other));
  kernels::Axpy(1.0f, other.data(), data(), size());
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  E2DTC_CHECK(SameShape(other));
  kernels::Axpy(scale, other.data(), data(), size());
}

void Tensor::Scale(float scale) {
  for (auto& x : data_) x *= scale;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(s);
}

bool Tensor::HasNonFinite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

void Tensor::Matmul(const Tensor& a, const Tensor& b) {
  E2DTC_CHECK_EQ(a.cols_, b.rows_);
  E2DTC_CHECK(this != &a && this != &b);
  rows_ = a.rows_;
  cols_ = b.cols_;
  data_.resize(static_cast<size_t>(rows_) * cols_);
  // Dense inputs (activations / weights): the kernel layer runs the
  // branch-free blocked loop; no zero-skipping (a sparsity branch in the
  // k-loop defeats vectorization and costs more than it saves).
  kernels::MatmulNN(rows_, a.cols_, cols_, a.data(), b.data(), data(),
                    /*accumulate=*/false);
}

void Tensor::AddTransposedMatmul(const Tensor& a, const Tensor& b) {
  // this [n,m] += a^T [n,k'] * b [k',m] where a is [k',n].
  E2DTC_CHECK_EQ(a.rows_, b.rows_);
  E2DTC_CHECK_EQ(rows_, a.cols_);
  E2DTC_CHECK_EQ(cols_, b.cols_);
  E2DTC_CHECK(this != &a && this != &b);
  kernels::MatmulTN(rows_, a.rows_, cols_, a.data(), b.data(), data());
}

void Tensor::AddMatmulTransposed(const Tensor& a, const Tensor& b) {
  // this [n,m] += a [n,k] * b^T [k,m] where b is [m,k].
  E2DTC_CHECK_EQ(a.cols_, b.cols_);
  E2DTC_CHECK_EQ(rows_, a.rows_);
  E2DTC_CHECK_EQ(cols_, b.rows_);
  E2DTC_CHECK(this != &a && this != &b);
  kernels::MatmulNT(rows_, a.cols_, cols_, a.data(), b.data(), data());
}

Tensor Tensor::Transposed() const {
  Tensor t(cols_, rows_);
  kernels::Transpose(data(), rows_, cols_, t.data());
  return t;
}

Tensor Tensor::SliceRows(int begin, int count) const {
  E2DTC_CHECK(begin >= 0 && count >= 0 && begin + count <= rows_);
  Tensor t(count, cols_);
  std::memcpy(t.data(), row(begin),
              static_cast<size_t>(count) * cols_ * sizeof(float));
  return t;
}

std::string Tensor::ToString(int max_entries) const {
  std::string out = StrFormat("[%dx%d] {", rows_, cols_);
  const int64_t n = std::min<int64_t>(size(), max_entries);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4g", data_[static_cast<size_t>(i)]);
  }
  if (n < size()) out += ", ...";
  out += "}";
  return out;
}

}  // namespace e2dtc::nn
