#include "nn/module.h"

#include "util/rng.h"

namespace e2dtc::nn {

std::vector<Var> Module::Parameters() const {
  std::vector<NamedParameter> named = NamedParameters();
  std::vector<Var> out;
  out.reserve(named.size());
  for (auto& p : named) out.push_back(p.var);
  return out;
}

std::vector<NamedParameter> Module::NamedParameters() const {
  std::vector<NamedParameter> out;
  Collect("", &out);
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t n = 0;
  for (const auto& p : NamedParameters()) n += p.var.value().size();
  return n;
}

Var Module::AddParameter(const std::string& name, Tensor init) {
  Var v = Var::Leaf(std::move(init), /*requires_grad=*/true, name);
  own_.push_back({name, v});
  return v;
}

void Module::AddSubmodule(const std::string& name, Module* child) {
  E2DTC_CHECK(child != nullptr && child != this);
  submodules_.push_back({name, child});
}

void Module::Collect(const std::string& prefix,
                     std::vector<NamedParameter>* out) const {
  for (const auto& p : own_) {
    out->push_back({prefix.empty() ? p.name : prefix + "." + p.name, p.var});
  }
  for (const auto& [name, child] : submodules_) {
    child->Collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter("weight", Tensor::Xavier(in_features, out_features,
                                                  rng));
  if (bias) bias_ = AddParameter("bias", Tensor(1, out_features));
}

Var Linear::Forward(const Var& x) const {
  if (bias_.defined()) return Affine(x, weight_, bias_);
  return Matmul(x, weight_);
}

Embedding::Embedding(int vocab_size, int dim, Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  table_ = AddParameter("table", Tensor::Gaussian(vocab_size, dim, 0.1f, rng));
}

Var Embedding::Forward(std::vector<int> indices) const {
  return GatherRows(table_, std::move(indices));
}

void Embedding::LoadTable(const Tensor& table) {
  E2DTC_CHECK_EQ(table.rows(), vocab_size_);
  E2DTC_CHECK_EQ(table.cols(), dim_);
  table_.mutable_value() = table;
}

}  // namespace e2dtc::nn
