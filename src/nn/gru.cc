#include "nn/gru.h"

#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace e2dtc::nn {

GruCell::GruCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  // PyTorch-style U(-1/sqrt(H), 1/sqrt(H)) initialization for all weights.
  const float limit = 1.0f / std::sqrt(static_cast<float>(hidden_size));
  wx_ = AddParameter("wx",
                     Tensor::Uniform(input_size, 3 * hidden_size, limit, rng));
  wh_ = AddParameter(
      "wh", Tensor::Uniform(hidden_size, 3 * hidden_size, limit, rng));
  bx_ = AddParameter("bx", Tensor(1, 3 * hidden_size));
  bh_ = AddParameter("bh", Tensor(1, 3 * hidden_size));
}

Var GruCell::Forward(const Var& x, const Var& h) const {
  const int hsz = hidden_size_;
  // xg and hg stay separate ops (not one DualAffine): the reset gate
  // multiplies hg's n-slice BEFORE it joins xg's.
  Var xg = Affine(x, wx_, bx_);  // [B, 3H]
  Var hg = Affine(h, wh_, bh_);  // [B, 3H]
  Var r = Sigmoid(Add(SliceCols(xg, 0, hsz), SliceCols(hg, 0, hsz)));
  Var z = Sigmoid(Add(SliceCols(xg, hsz, hsz), SliceCols(hg, hsz, hsz)));
  Var n = Tanh(
      Add(SliceCols(xg, 2 * hsz, hsz), Mul(r, SliceCols(hg, 2 * hsz, hsz))));
  // h' = (1 - z) * n + z * h == n + z * (h - n).
  return Add(n, Mul(z, Sub(h, n)));
}

GruStack::GruStack(int num_layers, int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  E2DTC_CHECK_GT(num_layers, 0);
  cells_.reserve(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    const int in = (l == 0) ? input_size : hidden_size;
    cells_.push_back(std::make_unique<GruCell>(in, hidden_size, rng));
    AddSubmodule(StrFormat("cell%d", l), cells_.back().get());
  }
}

std::vector<Var> GruStack::Step(const Var& x, const std::vector<Var>& h,
                                float dropout, Rng* rng) const {
  E2DTC_CHECK_EQ(h.size(), cells_.size());
  std::vector<Var> out;
  out.reserve(cells_.size());
  Var input = x;
  for (size_t l = 0; l < cells_.size(); ++l) {
    if (l > 0 && dropout > 0.0f && rng != nullptr) {
      input = nn::Dropout(input, dropout, rng);
    }
    Var next = cells_[l]->Forward(input, h[l]);
    out.push_back(next);
    input = next;
  }
  return out;
}

std::vector<Var> GruStack::InitialState(int batch_size) const {
  std::vector<Var> h;
  h.reserve(cells_.size());
  for (size_t l = 0; l < cells_.size(); ++l) {
    h.push_back(Var::Constant(Tensor(batch_size, hidden_size_)));
  }
  return h;
}

}  // namespace e2dtc::nn
