#ifndef E2DTC_NN_TENSOR_H_
#define E2DTC_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace e2dtc {
class Rng;
}

namespace e2dtc::nn {

/// Dense row-major 2-D float32 tensor. Vectors are represented as [1, n] or
/// [n, 1]; scalars as [1, 1]. This is the single numeric container the
/// autograd engine, the optimizers, and the serialization layer agree on.
///
/// All shape mismatches are programming errors and abort via E2DTC_CHECK —
/// shapes are fully determined by model configuration, never by user data.
class Tensor {
 public:
  /// An empty 0x0 tensor.
  Tensor() = default;

  /// A rows x cols tensor initialized to `fill`.
  Tensor(int rows, int cols, float fill = 0.0f);

  /// A rows x cols tensor adopting `data` (size must equal rows*cols).
  Tensor(int rows, int cols, std::vector<float> data);

  /// A [1,1] scalar.
  static Tensor Scalar(float v);

  /// Uniform random entries in [-limit, limit].
  static Tensor Uniform(int rows, int cols, float limit, Rng* rng);

  /// Gaussian random entries with the given stddev.
  static Tensor Gaussian(int rows, int cols, float stddev, Rng* rng);

  /// Xavier/Glorot uniform initialization for a [fan_in, fan_out] weight.
  static Tensor Xavier(int fan_in, int fan_out, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int r, int c) {
    E2DTC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    E2DTC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw row pointer (no bounds check on the column side).
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Value of a [1,1] tensor.
  float scalar() const {
    E2DTC_CHECK(rows_ == 1 && cols_ == 1);
    return data_[0];
  }

  /// Sets every entry to `v`.
  void Fill(float v);

  /// Sets every entry to zero.
  void Zero() { Fill(0.0f); }

  /// this += other (same shape).
  void Add(const Tensor& other);

  /// this += scale * other (same shape).
  void AddScaled(const Tensor& other, float scale);

  /// this *= scale.
  void Scale(float scale);

  /// Sum of all entries.
  float Sum() const;

  /// Squared Frobenius norm.
  float SquaredNorm() const;

  /// True if any entry is NaN or infinite.
  bool HasNonFinite() const;

  /// this = a * b (matrix product). Shapes: [n,k] x [k,m] -> [n,m].
  /// `this` is resized; must not alias a or b.
  ///
  /// The whole matmul family runs on the blocked parallel kernel layer
  /// (nn/kernels.h) under one accumulation contract: float partial sums per
  /// kBlockK-long k-run, widened to double across runs, fixed order per
  /// element — results are bitwise independent of the kernel thread count.
  void Matmul(const Tensor& a, const Tensor& b);

  /// this += a^T * b. Shapes: a [k,n], b [k,m] -> this [n,m].
  /// Must not alias a or b. Same kernel accumulation contract as Matmul.
  void AddTransposedMatmul(const Tensor& a, const Tensor& b);

  /// this += a * b^T. Shapes: a [n,k], b [m,k] -> this [n,m].
  /// Must not alias a or b. Same kernel accumulation contract as Matmul.
  void AddMatmulTransposed(const Tensor& a, const Tensor& b);

  /// Transposed copy.
  Tensor Transposed() const;

  /// Copy of rows [begin, begin+count).
  Tensor SliceRows(int begin, int count) const;

  /// Debug string "[2x3] {...}" with up to `max_entries` values.
  std::string ToString(int max_entries = 16) const;

  const std::vector<float>& storage() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_TENSOR_H_
