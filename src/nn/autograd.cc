#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/kernels.h"
#include "util/rng.h"

namespace e2dtc::nn {

void Node::EnsureGrad() {
  if (!grad.SameShape(value)) grad = Tensor(value.rows(), value.cols());
}

void Node::ZeroGrad() {
  if (grad.SameShape(value)) grad.Zero();
}

Var Var::Leaf(Tensor value, bool requires_grad, std::string name) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->name = std::move(name);
  return Var(node);
}

Var Var::Constant(Tensor value) { return Leaf(std::move(value), false); }

namespace {

/// How a binary op's second operand maps onto the first.
enum class Broadcast { kSame, kRow, kCol };

Broadcast DeduceBroadcast(const Tensor& a, const Tensor& b) {
  if (a.SameShape(b)) return Broadcast::kSame;
  if (b.rows() == 1 && b.cols() == a.cols()) return Broadcast::kRow;
  if (b.cols() == 1 && b.rows() == a.rows()) return Broadcast::kCol;
  E2DTC_CHECK_MSG(false, "incompatible shapes for broadcast binary op");
  return Broadcast::kSame;
}

NodePtr MakeOpNode(Tensor value, std::vector<NodePtr> inputs,
                   std::function<void(Node*)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->inputs = std::move(inputs);
  for (const auto& in : node->inputs) {
    if (in->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) node->backward_fn = std::move(backward);
  return node;
}

/// dst_grad += grad, reducing over the broadcast dimension if needed.
void AccumulateBroadcastGrad(Node* dst, const Tensor& grad, Broadcast bc) {
  if (!dst->requires_grad) return;
  dst->EnsureGrad();
  switch (bc) {
    case Broadcast::kSame:
      dst->grad.Add(grad);
      break;
    case Broadcast::kRow: {
      for (int i = 0; i < grad.rows(); ++i) {
        const float* g = grad.row(i);
        float* d = dst->grad.row(0);
        for (int j = 0; j < grad.cols(); ++j) d[j] += g[j];
      }
      break;
    }
    case Broadcast::kCol: {
      for (int i = 0; i < grad.rows(); ++i) {
        const float* g = grad.row(i);
        double s = 0.0;
        for (int j = 0; j < grad.cols(); ++j) s += g[j];
        dst->grad.at(i, 0) += static_cast<float>(s);
      }
      break;
    }
  }
}

float BroadcastAt(const Tensor& b, int i, int j, Broadcast bc) {
  switch (bc) {
    case Broadcast::kSame:
      return b.at(i, j);
    case Broadcast::kRow:
      return b.at(0, j);
    case Broadcast::kCol:
      return b.at(i, 0);
  }
  return 0.0f;
}

/// Elementwise unary op helper: value[i] = fwd(a[i]); da[i] += dfn(a_val,
/// out_val) * dout[i].
Var UnaryOp(const Var& a, const std::function<float(float)>& fwd,
            const std::function<float(float, float)>& dfn) {
  Tensor out(a.rows(), a.cols());
  const Tensor& av = a.value();
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = fwd(av.data()[i]);
  NodePtr an = a.node();
  auto backward = [dfn](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    const Tensor& av2 = in->value;
    for (int64_t i = 0; i < av2.size(); ++i) {
      in->grad.data()[i] +=
          dfn(av2.data()[i], n->value.data()[i]) * n->grad.data()[i];
    }
  };
  return Var(MakeOpNode(std::move(out), {an}, backward));
}

}  // namespace

void Backward(const Var& root) {
  E2DTC_CHECK(root.defined());
  E2DTC_CHECK_MSG(root.rows() == 1 && root.cols() == 1,
                  "Backward root must be a scalar");
  if (!root.requires_grad()) return;

  // Iterative post-order DFS to build a topological order.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root.node().get(), 0});
  visited.insert(root.node().get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      Node* child = f.node->inputs[f.next_input++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  root.node()->EnsureGrad();
  root.node()->grad.Fill(1.0f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) {
      n->EnsureGrad();  // nodes never touched forward of the root
      n->backward_fn(n);
    }
  }
}

Var Matmul(const Var& a, const Var& b) {
  Tensor out;
  out.Matmul(a.value(), b.value());
  auto backward = [](Node* n) {
    Node* a_in = n->inputs[0].get();
    Node* b_in = n->inputs[1].get();
    // dA += dOut * B^T ; dB += A^T * dOut.
    if (a_in->requires_grad) {
      a_in->EnsureGrad();
      a_in->grad.AddMatmulTransposed(n->grad, b_in->value);
    }
    if (b_in->requires_grad) {
      b_in->EnsureGrad();
      b_in->grad.AddTransposedMatmul(a_in->value, n->grad);
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node(), b.node()}, backward));
}

Var Affine(const Var& x, const Var& w, const Var& b) {
  E2DTC_CHECK_EQ(x.cols(), w.rows());
  E2DTC_CHECK(b.rows() == 1 && b.cols() == w.cols());
  Tensor out;
  out.Matmul(x.value(), w.value());
  kernels::AddBiasRow(out.data(), b.value().data(), out.rows(), out.cols());
  auto backward = [](Node* n) {
    Node* x_in = n->inputs[0].get();
    Node* w_in = n->inputs[1].get();
    Node* b_in = n->inputs[2].get();
    if (x_in->requires_grad) {
      x_in->EnsureGrad();
      x_in->grad.AddMatmulTransposed(n->grad, w_in->value);
    }
    if (w_in->requires_grad) {
      w_in->EnsureGrad();
      w_in->grad.AddTransposedMatmul(x_in->value, n->grad);
    }
    if (b_in->requires_grad) {
      b_in->EnsureGrad();
      kernels::ColumnSumAdd(n->grad.data(), n->grad.rows(), n->grad.cols(),
                            b_in->grad.data());
    }
  };
  return Var(
      MakeOpNode(std::move(out), {x.node(), w.node(), b.node()}, backward));
}

Var DualAffine(const Var& x, const Var& wx, const Var& bx, const Var& h,
               const Var& wh, const Var& bh) {
  E2DTC_CHECK_EQ(x.cols(), wx.rows());
  E2DTC_CHECK_EQ(h.cols(), wh.rows());
  E2DTC_CHECK_EQ(x.rows(), h.rows());
  E2DTC_CHECK_EQ(wx.cols(), wh.cols());
  E2DTC_CHECK(bx.rows() == 1 && bx.cols() == wx.cols());
  E2DTC_CHECK(bh.rows() == 1 && bh.cols() == wh.cols());
  Tensor out;
  out.Matmul(x.value(), wx.value());
  // h*wh accumulates straight into x*wx's output — the [n,m] gate
  // pre-activation never exists twice.
  kernels::MatmulNN(out.rows(), h.cols(), out.cols(), h.value().data(),
                    wh.value().data(), out.data(), /*accumulate=*/true);
  kernels::AddBiasRow(out.data(), bx.value().data(), out.rows(), out.cols());
  kernels::AddBiasRow(out.data(), bh.value().data(), out.rows(), out.cols());
  auto backward = [](Node* n) {
    Node* x_in = n->inputs[0].get();
    Node* wx_in = n->inputs[1].get();
    Node* bx_in = n->inputs[2].get();
    Node* h_in = n->inputs[3].get();
    Node* wh_in = n->inputs[4].get();
    Node* bh_in = n->inputs[5].get();
    if (x_in->requires_grad) {
      x_in->EnsureGrad();
      x_in->grad.AddMatmulTransposed(n->grad, wx_in->value);
    }
    if (wx_in->requires_grad) {
      wx_in->EnsureGrad();
      wx_in->grad.AddTransposedMatmul(x_in->value, n->grad);
    }
    if (bx_in->requires_grad) {
      bx_in->EnsureGrad();
      kernels::ColumnSumAdd(n->grad.data(), n->grad.rows(), n->grad.cols(),
                            bx_in->grad.data());
    }
    if (h_in->requires_grad) {
      h_in->EnsureGrad();
      h_in->grad.AddMatmulTransposed(n->grad, wh_in->value);
    }
    if (wh_in->requires_grad) {
      wh_in->EnsureGrad();
      wh_in->grad.AddTransposedMatmul(h_in->value, n->grad);
    }
    if (bh_in->requires_grad) {
      bh_in->EnsureGrad();
      kernels::ColumnSumAdd(n->grad.data(), n->grad.rows(), n->grad.cols(),
                            bh_in->grad.data());
    }
  };
  return Var(MakeOpNode(
      std::move(out),
      {x.node(), wx.node(), bx.node(), h.node(), wh.node(), bh.node()},
      backward));
}

Var Transpose(const Var& a) {
  Tensor out = a.value().Transposed();
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    Tensor gt = n->grad.Transposed();
    in->grad.Add(gt);
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var Add(const Var& a, const Var& b) {
  const Broadcast bc = DeduceBroadcast(a.value(), b.value());
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      out.at(i, j) = a.value().at(i, j) + BroadcastAt(b.value(), i, j, bc);
    }
  }
  auto backward = [bc](Node* n) {
    Node* a_in = n->inputs[0].get();
    Node* b_in = n->inputs[1].get();
    if (a_in->requires_grad) {
      a_in->EnsureGrad();
      a_in->grad.Add(n->grad);
    }
    AccumulateBroadcastGrad(b_in, n->grad, bc);
  };
  return Var(MakeOpNode(std::move(out), {a.node(), b.node()}, backward));
}

Var Sub(const Var& a, const Var& b) {
  const Broadcast bc = DeduceBroadcast(a.value(), b.value());
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      out.at(i, j) = a.value().at(i, j) - BroadcastAt(b.value(), i, j, bc);
    }
  }
  auto backward = [bc](Node* n) {
    Node* a_in = n->inputs[0].get();
    Node* b_in = n->inputs[1].get();
    if (a_in->requires_grad) {
      a_in->EnsureGrad();
      a_in->grad.Add(n->grad);
    }
    if (b_in->requires_grad) {
      Tensor neg = n->grad;
      neg.Scale(-1.0f);
      AccumulateBroadcastGrad(b_in, neg, bc);
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node(), b.node()}, backward));
}

Var Mul(const Var& a, const Var& b) {
  const Broadcast bc = DeduceBroadcast(a.value(), b.value());
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      out.at(i, j) = a.value().at(i, j) * BroadcastAt(b.value(), i, j, bc);
    }
  }
  auto backward = [bc](Node* n) {
    Node* a_in = n->inputs[0].get();
    Node* b_in = n->inputs[1].get();
    if (a_in->requires_grad) {
      a_in->EnsureGrad();
      for (int i = 0; i < n->grad.rows(); ++i) {
        for (int j = 0; j < n->grad.cols(); ++j) {
          a_in->grad.at(i, j) +=
              n->grad.at(i, j) * BroadcastAt(b_in->value, i, j, bc);
        }
      }
    }
    if (b_in->requires_grad) {
      Tensor scaled(n->grad.rows(), n->grad.cols());
      for (int i = 0; i < n->grad.rows(); ++i) {
        for (int j = 0; j < n->grad.cols(); ++j) {
          scaled.at(i, j) = n->grad.at(i, j) * a_in->value.at(i, j);
        }
      }
      AccumulateBroadcastGrad(b_in, scaled, bc);
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node(), b.node()}, backward));
}

Var Div(const Var& a, const Var& b) {
  const Broadcast bc = DeduceBroadcast(a.value(), b.value());
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      out.at(i, j) = a.value().at(i, j) / BroadcastAt(b.value(), i, j, bc);
    }
  }
  auto backward = [bc](Node* n) {
    Node* a_in = n->inputs[0].get();
    Node* b_in = n->inputs[1].get();
    if (a_in->requires_grad) {
      a_in->EnsureGrad();
      for (int i = 0; i < n->grad.rows(); ++i) {
        for (int j = 0; j < n->grad.cols(); ++j) {
          a_in->grad.at(i, j) +=
              n->grad.at(i, j) / BroadcastAt(b_in->value, i, j, bc);
        }
      }
    }
    if (b_in->requires_grad) {
      // d/db (a/b) = -a / b^2.
      Tensor scaled(n->grad.rows(), n->grad.cols());
      for (int i = 0; i < n->grad.rows(); ++i) {
        for (int j = 0; j < n->grad.cols(); ++j) {
          const float bj = BroadcastAt(b_in->value, i, j, bc);
          scaled.at(i, j) =
              -n->grad.at(i, j) * a_in->value.at(i, j) / (bj * bj);
        }
      }
      AccumulateBroadcastGrad(b_in, scaled, bc);
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node(), b.node()}, backward));
}

Var AddScalar(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Var MulScalar(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Var Neg(const Var& a) { return MulScalar(a, -1.0f); }

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

Var Sigmoid(const Var& a) {
  // Gate activation: hot enough in the RNN cells to bypass the
  // std::function-per-element UnaryOp helper for the kernel loops.
  Tensor out(a.rows(), a.cols());
  kernels::SigmoidForward(a.value().data(), out.data(), out.size());
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    kernels::SigmoidBackwardAdd(n->value.data(), n->grad.data(),
                                in->grad.data(), n->value.size());
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var Tanh(const Var& a) {
  Tensor out(a.rows(), a.cols());
  kernels::TanhForward(a.value().data(), out.data(), out.size());
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    kernels::TanhBackwardAdd(n->value.data(), n->grad.data(),
                             in->grad.data(), n->value.size());
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var Square(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Var Reciprocal(const Var& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / x; },
      [](float x, float) { return -1.0f / (x * x); });
}

Var Sqrt(const Var& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::sqrt(std::max(x, eps)); },
      [eps](float x, float y) {
        (void)x;
        return 0.5f / std::max(y, eps);
      });
}

Var Sum(const Var& a) {
  Tensor out = Tensor::Scalar(a.value().Sum());
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    const float g = n->grad.scalar();
    for (int64_t i = 0; i < in->grad.size(); ++i) in->grad.data()[i] += g;
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var Mean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return MulScalar(Sum(a), inv);
}

Var RowSum(const Var& a) {
  Tensor out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    const float* r = a.value().row(i);
    double s = 0.0;
    for (int j = 0; j < a.cols(); ++j) s += r[j];
    out.at(i, 0) = static_cast<float>(s);
  }
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    for (int i = 0; i < in->grad.rows(); ++i) {
      const float g = n->grad.at(i, 0);
      float* r = in->grad.row(i);
      for (int j = 0; j < in->grad.cols(); ++j) r[j] += g;
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var SliceCols(const Var& a, int begin, int count) {
  E2DTC_CHECK(begin >= 0 && count > 0 && begin + count <= a.cols());
  Tensor out(a.rows(), count);
  for (int i = 0; i < a.rows(); ++i) {
    const float* src = a.value().row(i) + begin;
    float* dst = out.row(i);
    std::copy(src, src + count, dst);
  }
  auto backward = [begin, count](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    for (int i = 0; i < n->grad.rows(); ++i) {
      const float* g = n->grad.row(i);
      float* dst = in->grad.row(i) + begin;
      for (int j = 0; j < count; ++j) dst[j] += g[j];
    }
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

Var ConcatRows(const std::vector<Var>& parts) {
  E2DTC_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int rows = 0;
  for (const auto& p : parts) {
    E2DTC_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Tensor out(rows, cols);
  std::vector<NodePtr> inputs;
  inputs.reserve(parts.size());
  int offset = 0;
  for (const auto& p : parts) {
    for (int i = 0; i < p.rows(); ++i) {
      std::copy(p.value().row(i), p.value().row(i) + cols,
                out.row(offset + i));
    }
    offset += p.rows();
    inputs.push_back(p.node());
  }
  auto backward = [cols](Node* n) {
    int off = 0;
    for (auto& in_ptr : n->inputs) {
      Node* in = in_ptr.get();
      const int r = in->value.rows();
      if (in->requires_grad) {
        in->EnsureGrad();
        for (int i = 0; i < r; ++i) {
          const float* g = n->grad.row(off + i);
          float* d = in->grad.row(i);
          for (int j = 0; j < cols; ++j) d[j] += g[j];
        }
      }
      off += r;
    }
  };
  return Var(MakeOpNode(std::move(out), std::move(inputs), backward));
}

Var GatherRows(const Var& table, std::vector<int> indices) {
  const Tensor& tv = table.value();
  Tensor out(static_cast<int>(indices.size()), tv.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    E2DTC_CHECK(idx >= 0 && idx < tv.rows());
    std::copy(tv.row(idx), tv.row(idx) + tv.cols(),
              out.row(static_cast<int>(i)));
  }
  auto backward = [idx = std::move(indices)](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    const int cols = in->value.cols();
    for (size_t i = 0; i < idx.size(); ++i) {
      const float* g = n->grad.row(static_cast<int>(i));
      float* d = in->grad.row(idx[i]);
      for (int j = 0; j < cols; ++j) d[j] += g[j];
    }
  };
  return Var(MakeOpNode(std::move(out), {table.node()}, backward));
}

Var Dropout(const Var& a, float rate, Rng* rng) {
  E2DTC_CHECK(rate >= 0.0f && rate < 1.0f);
  if (rate == 0.0f) return a;
  Tensor mask(a.rows(), a.cols());
  const float keep_scale = 1.0f / (1.0f - rate);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng->Bernoulli(rate) ? 0.0f : keep_scale;
  }
  return Mul(a, Var::Constant(std::move(mask)));
}

Var SoftmaxRows(const Var& a) {
  Tensor out(a.rows(), a.cols());
  kernels::SoftmaxRowsForward(a.value().data(), out.data(), a.rows(),
                              a.cols());
  auto backward = [](Node* n) {
    Node* in = n->inputs[0].get();
    if (!in->requires_grad) return;
    in->EnsureGrad();
    // dX_ij = y_ij * (g_ij - sum_k g_ik y_ik).
    kernels::SoftmaxRowsBackwardAdd(n->value.data(), n->grad.data(),
                                    in->grad.data(), n->value.rows(),
                                    n->value.cols());
  };
  return Var(MakeOpNode(std::move(out), {a.node()}, backward));
}

}  // namespace e2dtc::nn
