#include "nn/optimizer.h"

#include <cmath>

#include "util/string_util.h"

namespace e2dtc::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    E2DTC_CHECK(p.defined() && p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.node()->ZeroGrad();
}

Status Optimizer::CheckStateShape(const OptimizerState& state,
                                  size_t expected_slots) const {
  if (state.slots.size() != expected_slots) {
    return Status::InvalidArgument(
        StrFormat("optimizer state has %zu slots, expected %zu",
                  state.slots.size(), expected_slots));
  }
  for (size_t s = 0; s < state.slots.size(); ++s) {
    if (state.slots[s].size() != params_.size()) {
      return Status::InvalidArgument(StrFormat(
          "optimizer state slot %zu covers %zu parameters, expected %zu", s,
          state.slots[s].size(), params_.size()));
    }
    for (size_t i = 0; i < params_.size(); ++i) {
      if (!state.slots[s][i].SameShape(params_[i].value())) {
        return Status::InvalidArgument(StrFormat(
            "optimizer state slot %zu tensor %zu is [%dx%d], parameter is "
            "[%dx%d]",
            s, i, state.slots[s][i].rows(), state.slots[s][i].cols(),
            params_[i].value().rows(), params_[i].value().cols()));
      }
    }
  }
  return Status::OK();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    if (g.SameShape(p.value())) total_sq += g.SquaredNorm();
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      Tensor& g = p.node()->grad;
      if (g.SameShape(p.value())) g.Scale(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.emplace_back(p.value().rows(), p.value().cols());
    }
  }
}

void Sgd::Step() {
  NotifyStep();
  for (size_t i = 0; i < params_.size(); ++i) {
    Node* n = params_[i].node().get();
    if (!n->grad.SameShape(n->value)) continue;  // no grad this step
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[i];
      vel.Scale(momentum_);
      vel.AddScaled(n->grad, 1.0f);
      n->value.AddScaled(vel, -lr_);
    } else {
      n->value.AddScaled(n->grad, -lr_);
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  state.lr = lr_;
  state.step = 0;
  if (momentum_ > 0.0f) state.slots.push_back(velocity_);
  return state;
}

Status Sgd::ImportState(const OptimizerState& state) {
  const size_t expected_slots = momentum_ > 0.0f ? 1 : 0;
  E2DTC_RETURN_IF_ERROR(CheckStateShape(state, expected_slots));
  lr_ = state.lr;
  if (momentum_ > 0.0f) velocity_ = state.slots[0];
  return Status::OK();
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  NotifyStep();
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float step_size = lr_ * std::sqrt(bc2) / bc1;
  for (size_t i = 0; i < params_.size(); ++i) {
    Node* n = params_[i].node().get();
    if (!n->grad.SameShape(n->value)) continue;
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float* g = n->grad.data();
    float* w = n->value.data();
    const int64_t sz = n->value.size();
    for (int64_t j = 0; j < sz; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      w[j] -= step_size * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  state.lr = lr_;
  state.step = t_;
  state.slots.push_back(m_);
  state.slots.push_back(v_);
  return state;
}

Status Adam::ImportState(const OptimizerState& state) {
  E2DTC_RETURN_IF_ERROR(CheckStateShape(state, 2));
  lr_ = state.lr;
  t_ = state.step;
  m_ = state.slots[0];
  v_ = state.slots[1];
  return Status::OK();
}

}  // namespace e2dtc::nn
