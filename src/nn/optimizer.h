#ifndef E2DTC_NN_OPTIMIZER_H_
#define E2DTC_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"

namespace e2dtc::nn {

/// Base optimizer over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  /// Zeroes every parameter gradient (call between steps).
  void ZeroGrad();

  /// Rescales all gradients so their global L2 norm is at most `max_norm`
  /// (paper: max gradient norm 5). Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba), the paper's optimizer (initial lr 1e-4).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t step_count() const { return t_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_OPTIMIZER_H_
