#ifndef E2DTC_NN_OPTIMIZER_H_
#define E2DTC_NN_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "nn/autograd.h"
#include "util/status.h"

namespace e2dtc::nn {

/// Snapshot of an optimizer's mutable state, for crash-safe checkpoints.
/// `slots` holds per-slot, per-parameter moment buffers (Sgd: {velocity} or
/// nothing; Adam: {m, v}), indexed slots[slot][param] in params() order.
/// Restoring an exported state makes subsequent Step() calls bitwise
/// identical to a run that never paused.
struct OptimizerState {
  float lr = 0.0f;
  int64_t step = 0;
  std::vector<std::vector<Tensor>> slots;
};

/// Base optimizer over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  /// Zeroes every parameter gradient (call between steps).
  void ZeroGrad();

  /// Rescales all gradients so their global L2 norm is at most `max_norm`
  /// (paper: max gradient norm 5). Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  virtual float lr() const = 0;
  virtual void set_lr(float lr) = 0;

  /// Copies out the full mutable state (learning rate, step counter,
  /// moment buffers).
  virtual OptimizerState ExportState() const = 0;

  /// Restores a previously exported state. Fails with InvalidArgument if the
  /// slot layout or tensor shapes do not match this optimizer's parameters.
  virtual Status ImportState(const OptimizerState& state) = 0;

  const std::vector<Var>& params() const { return params_; }

  /// Observer invoked at the top of every Step() — i.e. after the caller's
  /// ClipGradNorm and before the update is applied, so gradients are exactly
  /// what the update will consume. Receives the 0-based count of prior
  /// Step() calls on this optimizer instance (not persisted across
  /// checkpoint resume), the parameter set, and the current learning rate.
  /// Telemetry installs one to record per-module gradient norms and
  /// update-to-weight ratios; it must not mutate values or gradients. Pass
  /// an empty function to remove.
  using StepObserver = std::function<void(
      int64_t step, const std::vector<Var>& params, float lr)>;
  void SetStepObserver(StepObserver observer) {
    step_observer_ = std::move(observer);
  }

 protected:
  /// Shared ImportState validation: checks the expected slot count and that
  /// every slot tensor matches the corresponding parameter's shape.
  Status CheckStateShape(const OptimizerState& state,
                         size_t expected_slots) const;

  /// Subclass Step() implementations call this before touching parameters.
  void NotifyStep() {
    if (step_observer_) step_observer_(observed_steps_, params_, lr());
    ++observed_steps_;
  }

  std::vector<Var> params_;

 private:
  StepObserver step_observer_;
  int64_t observed_steps_ = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
  void Step() override;

  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }

  OptimizerState ExportState() const override;
  Status ImportState(const OptimizerState& state) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba), the paper's optimizer (initial lr 1e-4).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const override { return lr_; }
  void set_lr(float lr) override { lr_ = lr; }
  int64_t step_count() const { return t_; }

  OptimizerState ExportState() const override;
  Status ImportState(const OptimizerState& state) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_OPTIMIZER_H_
