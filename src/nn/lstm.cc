#include "nn/lstm.h"

#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace e2dtc::nn {

LstmCell::LstmCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float limit = 1.0f / std::sqrt(static_cast<float>(hidden_size));
  wx_ = AddParameter("wx",
                     Tensor::Uniform(input_size, 4 * hidden_size, limit, rng));
  wh_ = AddParameter(
      "wh", Tensor::Uniform(hidden_size, 4 * hidden_size, limit, rng));
  bx_ = AddParameter("bx", Tensor(1, 4 * hidden_size));
  bh_ = AddParameter("bh", Tensor(1, 4 * hidden_size));
}

LstmCell::State LstmCell::Forward(const Var& x, const State& state) const {
  const int hsz = hidden_size_;
  Var gates = DualAffine(x, wx_, bx_, state.h, wh_, bh_);  // [B, 4H]
  Var i = Sigmoid(SliceCols(gates, 0, hsz));
  Var f = Sigmoid(SliceCols(gates, hsz, hsz));
  Var g = Tanh(SliceCols(gates, 2 * hsz, hsz));
  Var o = Sigmoid(SliceCols(gates, 3 * hsz, hsz));
  State next;
  next.c = Add(Mul(f, state.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

LstmStack::LstmStack(int num_layers, int input_size, int hidden_size,
                     Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  E2DTC_CHECK_GT(num_layers, 0);
  cells_.reserve(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    const int in = (l == 0) ? input_size : hidden_size;
    cells_.push_back(std::make_unique<LstmCell>(in, hidden_size, rng));
    AddSubmodule(StrFormat("cell%d", l), cells_.back().get());
  }
}

std::vector<LstmCell::State> LstmStack::Step(
    const Var& x, const std::vector<LstmCell::State>& state, float dropout,
    Rng* rng) const {
  E2DTC_CHECK_EQ(state.size(), cells_.size());
  std::vector<LstmCell::State> out;
  out.reserve(cells_.size());
  Var input = x;
  for (size_t l = 0; l < cells_.size(); ++l) {
    if (l > 0 && dropout > 0.0f && rng != nullptr) {
      input = nn::Dropout(input, dropout, rng);
    }
    LstmCell::State next = cells_[l]->Forward(input, state[l]);
    input = next.h;
    out.push_back(std::move(next));
  }
  return out;
}

std::vector<LstmCell::State> LstmStack::InitialState(int batch_size) const {
  std::vector<LstmCell::State> state;
  state.reserve(cells_.size());
  for (size_t l = 0; l < cells_.size(); ++l) {
    LstmCell::State s;
    s.h = Var::Constant(Tensor(batch_size, hidden_size_));
    s.c = Var::Constant(Tensor(batch_size, hidden_size_));
    state.push_back(std::move(s));
  }
  return state;
}

}  // namespace e2dtc::nn
