#ifndef E2DTC_NN_LSTM_H_
#define E2DTC_NN_LSTM_H_

#include <vector>

#include "nn/module.h"

namespace e2dtc::nn {

/// Single LSTM cell (PyTorch gate convention):
///   i = sigmoid(x Wxi + bxi + h Whi + bhi)
///   f = sigmoid(x Wxf + bxf + h Whf + bhf)
///   g = tanh   (x Wxg + bxg + h Whg + bhg)
///   o = sigmoid(x Wxo + bxo + h Who + bho)
///   c' = f * c + i * g ;  h' = o * tanh(c')
/// Gates are fused into single [in,4H] / [H,4H] matmuls (blocks i,f,g,o).
/// The paper compares GRU against LSTM and picks GRU for its better
/// embedding quality (Section VII-B); this cell backs that ablation.
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, Rng* rng);

  struct State {
    Var h;  ///< [B, H]
    Var c;  ///< [B, H]
  };

  /// One step: x [B, in], state {h, c} -> new state.
  State Forward(const Var& x, const State& state) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Var wx_;  // [in, 4H]
  Var wh_;  // [H, 4H]
  Var bx_;  // [1, 4H]
  Var bh_;  // [1, 4H]
};

/// Stack of LSTM cells mirroring GruStack's Step/InitialState interface,
/// with the cell state carried alongside the hidden state.
class LstmStack : public Module {
 public:
  LstmStack(int num_layers, int input_size, int hidden_size, Rng* rng);

  /// One timestep through every layer. `state` holds one {h, c} per layer.
  /// Returns the new per-layer states; the top layer's h is the step output.
  std::vector<LstmCell::State> Step(const Var& x,
                                    const std::vector<LstmCell::State>& state,
                                    float dropout = 0.0f,
                                    Rng* rng = nullptr) const;

  /// Zero initial state for a batch of the given size.
  std::vector<LstmCell::State> InitialState(int batch_size) const;

  int num_layers() const { return static_cast<int>(cells_.size()); }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  std::vector<std::unique_ptr<LstmCell>> cells_;
};

}  // namespace e2dtc::nn

#endif  // E2DTC_NN_LSTM_H_
