#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "cluster/kmedoids.h"
#include "nn/kernels.h"
#include "core/t2vec.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace e2dtc::bench {

namespace {
// Every bench harness collects metrics so the CSV mirrors under
// bench_results/ come with counter/histogram context. Runs at static init
// time (this TU is always linked: every bench calls into the harness).
const bool kMetricsOn = [] {
  obs::EnableMetrics(true);
  return true;
}();
}  // namespace

void ApplyThreadFlags(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    const int value = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--distance-threads") == 0 && value >= 0) {
      distance::SetNumThreads(value);
      std::printf("distance engine threads: %d%s\n", value,
                  value == 0 ? " (auto)" : "");
    } else if (std::strcmp(argv[i], "--kernel-threads") == 0 && value >= 0) {
      nn::kernels::SetNumThreads(value);
      std::printf("kernel threads: %d%s\n", value,
                  value == 0 ? " (auto)" : "");
    }
  }
}

std::string PresetName(PresetId id) {
  switch (id) {
    case PresetId::kGeoLife:
      return "GeoLife";
    case PresetId::kPorto:
      return "Porto";
    case PresetId::kHangzhou:
      return "Hangzhou";
  }
  return "Unknown";
}

data::Dataset BuildPreset(PresetId id, double scale, uint64_t seed) {
  data::SyntheticCityConfig cfg;
  switch (id) {
    case PresetId::kGeoLife:
      cfg = data::GeoLifePreset(scale, seed);
      break;
    case PresetId::kPorto:
      cfg = data::PortoPreset(scale, seed);
      break;
    case PresetId::kHangzhou:
      cfg = data::HangzhouPreset(scale, seed);
      break;
  }
  data::Dataset raw = data::GenerateSyntheticCity(cfg).value();
  return data::RelabelDataset(raw, data::GroundTruthConfig{}).value();
}

std::vector<distance::Polyline> ProjectAll(const data::Dataset& dataset) {
  const geo::BoundingBox box =
      geo::ComputeBoundingBox(dataset.trajectories);
  const geo::GeoPoint center = box.Center();
  const geo::LocalProjection proj(center.lon, center.lat);
  std::vector<distance::Polyline> lines;
  lines.reserve(dataset.trajectories.size());
  for (const auto& t : dataset.trajectories) {
    lines.push_back(geo::ProjectTrajectory(proj, t));
  }
  return lines;
}

namespace {

MethodScore ScoreAssignments(const std::string& method,
                             const std::vector<int>& assignments,
                             const std::vector<int>& labels,
                             double seconds) {
  MethodScore score;
  score.method = method;
  score.quality = metrics::EvaluateClustering(assignments, labels).value();
  score.seconds = seconds;
  return score;
}

}  // namespace

MethodScore RunClassicKMedoids(const data::Dataset& dataset,
                               distance::Metric metric, int runs,
                               uint64_t seed) {
  const std::vector<int> labels = data::Labels(dataset);
  const std::vector<distance::Polyline> lines = ProjectAll(dataset);
  const int n = static_cast<int>(lines.size());

  // Epsilon grid for the threshold metrics (paper: grid search, report
  // best); a single pass for the threshold-free ones.
  std::vector<double> epsilons;
  if (metric == distance::Metric::kEdr ||
      metric == distance::Metric::kLcss) {
    epsilons = {100.0, 200.0, 400.0};
  } else {
    epsilons = {0.0};
  }

  MethodScore best;
  best.method = distance::MetricName(metric) + " + KM";
  bool first = true;
  for (double eps : epsilons) {
    Stopwatch watch;
    distance::MetricParams params;
    params.epsilon_meters = eps;
    distance::DistanceMatrix matrix =
        distance::ComputeDistanceMatrix(lines, metric, params);
    auto dist = [&matrix](int i, int j) { return matrix.at(i, j); };

    double uacc = 0.0, nmi = 0.0, ri = 0.0;
    for (int run = 0; run < runs; ++run) {
      cluster::KMedoidsOptions opts;
      opts.k = dataset.num_clusters;
      opts.seed = seed + static_cast<uint64_t>(run) * 1000 +
                  static_cast<uint64_t>(eps);
      cluster::KMedoidsResult km = cluster::KMedoids(n, dist, opts).value();
      metrics::ClusteringQuality q =
          metrics::EvaluateClustering(km.assignments, labels).value();
      uacc += q.uacc;
      nmi += q.nmi;
      ri += q.ri;
    }
    MethodScore score;
    score.method = best.method;
    score.quality = {uacc / runs, nmi / runs, ri / runs};
    // Paper's "clustering time": similarity computation + one clustering
    // pass (the matrix is computed once; the k-medoids passes are averaged).
    score.seconds = watch.ElapsedSeconds() / runs;
    if (first || score.quality.uacc > best.quality.uacc) {
      best = score;
      first = false;
    }
  }
  return best;
}

core::E2dtcConfig BenchConfig(core::LossMode mode) {
  core::E2dtcConfig cfg;
  cfg.model.embedding_dim = 48;
  cfg.model.hidden_size = 48;
  cfg.model.num_layers = 3;  // paper: 3-layer GRU
  cfg.model.knn_k = 12;
  cfg.pretrain.epochs = 8;
  cfg.pretrain.batch_size = 32;
  cfg.self_train.max_iters = 6;
  cfg.self_train.batch_size = 32;
  cfg.self_train.loss_mode = mode;
  return cfg;
}

core::E2dtcConfig BenchConfigFor(PresetId id, core::LossMode mode) {
  core::E2dtcConfig cfg = BenchConfig(mode);
  switch (id) {
    case PresetId::kGeoLife:
      cfg.model.skipgram_epochs = 30;
      cfg.pretrain.epochs = 10;
      // GeoLife (k = 12, shortest trajectories) is the hardest preset:
      // self-training needs a longer, slightly hotter schedule to converge.
      cfg.self_train.max_iters = 10;
      cfg.self_train.lr = 0.02f;
      cfg.self_train.beta = 0.2f;
      break;
    case PresetId::kPorto:
      cfg.model.skipgram_epochs = 20;
      cfg.pretrain.epochs = 10;
      break;
    case PresetId::kHangzhou:
      cfg.model.skipgram_epochs = 15;
      cfg.pretrain.epochs = 8;
      break;
  }
  return cfg;
}

DeepScores RunDeepMethods(const data::Dataset& dataset,
                          const core::E2dtcConfig& config) {
  const std::vector<int> labels = data::Labels(dataset);
  DeepScores out;
  auto pipeline = core::E2dtcPipeline::Fit(dataset, config);
  E2DTC_CHECK_MSG(pipeline.ok(), pipeline.status().ToString().c_str());
  out.pipeline = std::move(pipeline).value();
  const core::FitResult& fit = out.pipeline->fit_result();
  // t2vec + k-means is the pipeline stopped after pre-training: charge it
  // the embed + pretrain + k-means time.
  out.t2vec = ScoreAssignments(
      "t2vec + k-means", fit.l0_assignments, labels,
      fit.embed_seconds + fit.pretrain_seconds + fit.cluster_seconds * 0.1);
  out.e2dtc =
      ScoreAssignments("E2DTC", fit.assignments, labels, fit.total_seconds);
  return out;
}

std::string ResultsDir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

void PrintScoreRow(const MethodScore& score) {
  std::printf("  %-18s  UACC %.3f  NMI %.3f  RI %.3f   (%.2fs)\n",
              score.method.c_str(), score.quality.uacc, score.quality.nmi,
              score.quality.ri, score.seconds);
  std::fflush(stdout);
}

void WriteScoresCsv(const std::string& filename, const std::string& dataset,
                    const std::vector<MethodScore>& scores) {
  CsvWriter w(ResultsDir() + "/" + filename);
  if (!w.Ok()) return;
  (void)w.WriteRow({"dataset", "method", "uacc", "nmi", "ri", "seconds"});
  for (const auto& s : scores) {
    (void)w.WriteRow({dataset, s.method, StrFormat("%.4f", s.quality.uacc),
                      StrFormat("%.4f", s.quality.nmi),
                      StrFormat("%.4f", s.quality.ri),
                      StrFormat("%.3f", s.seconds)});
  }
  (void)w.Close();

  std::string stem = filename;
  const size_t dot = stem.rfind('.');
  if (dot != std::string::npos) stem.resize(dot);
  WriteMetricsSnapshotJson(stem + ".metrics.json");
}

void WriteMetricsSnapshotJson(const std::string& filename) {
  const std::string json =
      obs::Registry::Global().Snapshot().ToJson().Dump();
  std::FILE* f =
      std::fopen((ResultsDir() + "/" + filename).c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace e2dtc::bench
