// The experiment the paper runs but omits for space (Section VII-G: "we
// also generate a variety of ground-truth datasets with different
// parameters sigma and lambda via Algorithm 2 ... our algorithm achieves
// best performance in different ground-truth datasets"): sweep the radius
// ratio sigma and fallen threshold lambda, regenerate the labels each time,
// and compare E2DTC against the strongest classic baseline (DTW + KM).
#include <cstdio>

#include "bench/common.h"
#include "cluster/kmedoids.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Ground-truth sensitivity: Algorithm 2's sigma/lambda "
              "(Hangzhou) ===\n");

  data::Dataset raw =
      data::GenerateSyntheticCity(data::HangzhouPreset(1.0, 42)).value();

  CsvWriter csv(bench::ResultsDir() + "/gt_sensitivity.csv");
  (void)csv.WriteRow({"sigma", "lambda", "n", "method", "uacc", "nmi"});

  const double sigmas[] = {0.4, 0.6, 0.8};
  const double lambdas[] = {0.5, 0.7, 0.9};
  for (double sigma : sigmas) {
    for (double lambda : lambdas) {
      data::GroundTruthConfig gt;
      gt.sigma = sigma;
      gt.lambda = lambda;
      data::Dataset ds = data::RelabelDataset(raw, gt).value();
      if (ds.size() < 8 * ds.num_clusters) {
        std::printf("  sigma %.1f lambda %.1f: only %d labeled "
                    "trajectories, skipped\n",
                    sigma, lambda, ds.size());
        continue;
      }
      const std::vector<int> labels = data::Labels(ds);

      // Strongest classic: DTW + K-Medoids.
      std::vector<distance::Polyline> lines = bench::ProjectAll(ds);
      distance::DistanceMatrix dtw =
          distance::ComputeDistanceMatrix(lines, distance::Metric::kDtw);
      cluster::KMedoidsOptions km;
      km.k = ds.num_clusters;
      km.seed = 7;
      auto classic = cluster::KMedoids(
                         ds.size(),
                         [&](int i, int j) { return dtw.at(i, j); }, km)
                         .value();
      auto classic_q =
          metrics::EvaluateClustering(classic.assignments, labels).value();

      bench::DeepScores deep = bench::RunDeepMethods(
          ds, bench::BenchConfigFor(bench::PresetId::kHangzhou));

      std::printf("  sigma %.1f lambda %.1f (N=%3d):  DTW+KM %.3f/%.3f   "
                  "E2DTC %.3f/%.3f\n",
                  sigma, lambda, ds.size(), classic_q.uacc, classic_q.nmi,
                  deep.e2dtc.quality.uacc, deep.e2dtc.quality.nmi);
      std::fflush(stdout);
      (void)csv.WriteRow({StrFormat("%.1f", sigma),
                          StrFormat("%.1f", lambda),
                          StrFormat("%d", ds.size()), "DTW+KM",
                          StrFormat("%.4f", classic_q.uacc),
                          StrFormat("%.4f", classic_q.nmi)});
      (void)csv.WriteRow({StrFormat("%.1f", sigma),
                          StrFormat("%.1f", lambda),
                          StrFormat("%d", ds.size()), "E2DTC",
                          StrFormat("%.4f", deep.e2dtc.quality.uacc),
                          StrFormat("%.4f", deep.e2dtc.quality.nmi)});
    }
  }
  (void)csv.Close();
  std::printf("\nExpected (paper Section VII-G): E2DTC best across the "
              "sigma/lambda grid.\n");
  return 0;
}
