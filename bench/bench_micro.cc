// Engineering micro-benchmarks (google-benchmark): the building blocks the
// experiment harnesses lean on. Not a paper table — used to track kernel
// regressions.
//
// Special modes (skip google-benchmark, write machine-readable JSON):
//   bench_micro --gemm_json=PATH      seed-era Tensor loops vs nn::kernels
//                                     at the 3-layer GRU training shapes
//   bench_micro --distance_json=PATH  seed-era per-pair distance matrix /
//                                     scalar k-means assignment vs the tiled
//                                     batched engine and the GEMM-backed
//                                     assignment
//   bench_micro --telemetry_overhead=PATH
//                                     disabled-path cost of a telemetry
//                                     Series::Record site vs the obs
//                                     Counter sites (within-noise verdict)
//   bench_micro --obs_http_json=PATH  training-step medians with and without
//                                     a live /metrics scraper at 1 Hz
//                                     (within-noise verdict)
//   bench_micro --serve_json=PATH     serving-plane overload replay: calibrate
//                                     sustainable QPS closed-loop, then offer
//                                     1x/4x/16x open-loop and record served
//                                     QPS, accepted-request p99, and shed
//                                     rate; also writes PATH.series.jsonl for
//                                     e2dtc_report --compare
//   bench_micro --ann_json=PATH       vocab-tree ANN index vs the exact scan
//                                     at n=100k embeddings: recall@{1,10,64}
//                                     and speedup across probe widths, plus
//                                     approximate-vs-exact assignment
//                                     agreement at k=256 centroids
//   bench_micro --autotune_json=PATH  fused softmax / KNN-loss kernels vs
//                                     the pre-fusion scalar loops (bitwise
//                                     gradient checks + speedup at 1t/4t)
//                                     and autotuned-vs-default GEMM
//                                     dispatch; also writes
//                                     PATH.series.jsonl for
//                                     e2dtc_report --compare
// See docs/performance.md, docs/observability.md, and docs/serving.md.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ann/soft_assign.h"
#include "ann/vocab_tree.h"
#include "bench/common.h"
#include "cluster/kmeans.h"
#include "core/e2dtc.h"
#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "serve/context.h"
#include "serve/endpoints.h"
#include "serve/service.h"
#include "distance/dtw.h"
#include "distance/matrix.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/hausdorff.h"
#include "distance/sspd.h"
#include "distance/lcss.h"
#include "embedding/skipgram.h"
#include "geo/simplify.h"
#include "metrics/hungarian.h"
#include "nn/autotune.h"
#include "nn/linalg.h"
#include "nn/gru.h"
#include "nn/kernels.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "core/status.h"
#include "obs/exposition.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace e2dtc;

distance::Polyline RandomLine(Rng* rng, int n) {
  distance::Polyline line;
  line.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    line.push_back(geo::XY{rng->Uniform(0, 5000), rng->Uniform(0, 5000)});
  }
  return line;
}

void BM_Dtw(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DtwDistance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Dtw)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Edr(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::EdrDistance(a, b, 200.0));
  }
}
BENCHMARK(BM_Edr)->Range(16, 256);

void BM_Lcss(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::LcssDistance(a, b, 200.0));
  }
}
BENCHMARK(BM_Lcss)->Range(16, 256);

void BM_Hausdorff(benchmark::State& state) {
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::HausdorffDistance(a, b));
  }
}
BENCHMARK(BM_Hausdorff)->Range(16, 256);

void BM_Erp(benchmark::State& state) {
  Rng rng(21);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::ErpDistance(a, b));
  }
}
BENCHMARK(BM_Erp)->Range(16, 256);

void BM_Sspd(benchmark::State& state) {
  Rng rng(22);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::SspdDistance(a, b));
  }
}
BENCHMARK(BM_Sspd)->Range(16, 256);

void BM_DtwOnSimplified(benchmark::State& state) {
  // Douglas-Peucker preprocessing makes the O(L^2) metrics cheap: this
  // measures DTW cost after simplifying 256-point lines at 50 m tolerance.
  Rng rng(23);
  auto make = [&rng] {
    distance::Polyline line;
    double x = 0.0;
    for (int i = 0; i < 256; ++i) {
      line.push_back(geo::XY{x, rng.Gaussian(0.0, 20.0)});
      x += 30.0;
    }
    return line;
  };
  auto a_full = make();
  auto b_full = make();
  auto simplify = [](const distance::Polyline& line) {
    std::vector<int> keep = geo::DouglasPeuckerIndices(line, 50.0);
    distance::Polyline out;
    for (int i : keep) out.push_back(line[static_cast<size_t>(i)]);
    return out;
  };
  auto a = simplify(a_full);
  auto b = simplify(b_full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DtwDistance(a, b));
  }
  state.counters["kept_points"] = static_cast<double>(a.size());
}
BENCHMARK(BM_DtwOnSimplified);

void BM_SymmetricEigen(benchmark::State& state) {
  Rng rng(24);
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const float v = static_cast<float>(rng.Gaussian());
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SymmetricEigen(a)->values);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(64);

void BM_Matmul(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a = nn::Tensor::Gaussian(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Gaussian(n, n, 1.0f, &rng);
  nn::Tensor c;
  for (auto _ : state) {
    c.Matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Matmul)->Range(16, 128);

// --- GEMM suite ----------------------------------------------------------
// The shapes a 3-layer GRU (hidden 256, gates 3H=768) actually hits in
// training: forward gate pre-activations at small and large batch, the
// weight-gradient (TN) and input-gradient (NT) products of the backward
// pass, and the small gate shape the determinism test trains at. Each shape
// is measured against the pre-kernel seed loops (replicated below verbatim
// so the comparison survives future Tensor changes).

// Seed-era Tensor::Matmul: i-k-j order, float accumulation, and a sparsity
// branch that stalls dense inputs. Kept as the honest baseline.
void SeedMatmulNN(int n, int k, int m, const float* a, const float* b,
                  float* c) {
  std::fill(c, c + static_cast<size_t>(n) * m, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Seed-era Tensor::AddTransposedMatmul (c += a^T b, a stored [k,n]).
void SeedMatmulTN(int n, int k, int m, const float* a, const float* b,
                  float* c) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<size_t>(kk) * n;
    const float* brow = b + static_cast<size_t>(kk) * m;
    for (int i = 0; i < n; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) crow[j] += aki * brow[j];
    }
  }
}

// Seed-era Tensor::AddMatmulTransposed (c += a b^T, b stored [m,k]).
void SeedMatmulNT(int n, int k, int m, const float* a, const float* b,
                  float* c) {
  for (int i = 0; i < n; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      double dot = 0.0;
      for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      crow[j] += static_cast<float>(dot);
    }
  }
}

enum class GemmOp { kNN, kTN, kNT };

struct GemmCase {
  const char* name;
  GemmOp op;
  int n, k, m;
};

// a/b operand element counts for each op's storage convention.
size_t GemmASize(const GemmCase& c) {
  return static_cast<size_t>(c.op == GemmOp::kTN ? c.k : c.n) *
         (c.op == GemmOp::kTN ? c.n : c.k);
}
size_t GemmBSize(const GemmCase& c) {
  return static_cast<size_t>(c.op == GemmOp::kNT ? c.m : c.k) *
         (c.op == GemmOp::kNT ? c.k : c.m);
}

constexpr GemmCase kGemmCases[] = {
    {"gru_gate_fwd_b32", GemmOp::kNN, 32, 256, 768},
    {"gru_gate_fwd_b256", GemmOp::kNN, 256, 256, 768},
    {"gru_gate_dweight", GemmOp::kTN, 256, 256, 768},
    {"gru_gate_dinput", GemmOp::kNT, 256, 768, 256},
    {"gru_gate_fwd_small", GemmOp::kNN, 32, 64, 192},
};

void RunGemm(const GemmCase& c, bool seed, const float* a, const float* b,
             float* out) {
  switch (c.op) {
    case GemmOp::kNN:
      seed ? SeedMatmulNN(c.n, c.k, c.m, a, b, out)
           : nn::kernels::MatmulNN(c.n, c.k, c.m, a, b, out, false);
      break;
    case GemmOp::kTN:
      seed ? SeedMatmulTN(c.n, c.k, c.m, a, b, out)
           : nn::kernels::MatmulTN(c.n, c.k, c.m, a, b, out);
      break;
    case GemmOp::kNT:
      seed ? SeedMatmulNT(c.n, c.k, c.m, a, b, out)
           : nn::kernels::MatmulNT(c.n, c.k, c.m, a, b, out);
      break;
  }
}

void BM_Gemm(benchmark::State& state, const GemmCase& c, bool seed) {
  Rng rng(11);
  std::vector<float> a(GemmASize(c)), b(GemmBSize(c)),
      out(static_cast<size_t>(c.n) * c.m, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    RunGemm(c, seed, a.data(), b.data(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * int64_t{c.n} * c.k * c.m);
}

void RegisterGemmBenchmarks() {
  for (const GemmCase& c : kGemmCases) {
    for (bool seed : {true, false}) {
      std::string name = std::string("BM_Gemm/") + c.name +
                         (seed ? "/seed" : "/kernel");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&c, seed](benchmark::State& st) { BM_Gemm(st, c, seed); });
    }
  }
}

// Best-of-reps wall time per call, with iteration count auto-scaled so each
// rep runs long enough to time reliably on a busy box.
double MinSecondsPerCall(const GemmCase& c, bool seed) {
  Rng rng(12);
  std::vector<float> a(GemmASize(c)), b(GemmBSize(c)),
      out(static_cast<size_t>(c.n) * c.m, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  using Clock = std::chrono::steady_clock;
  auto time_iters = [&](int iters) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      RunGemm(c, seed, a.data(), b.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    }
    return std::chrono::duration<double>(Clock::now() - t0).count() / iters;
  };
  const double est = time_iters(1);  // also warms caches and the pool
  const int iters =
      static_cast<int>(std::clamp(0.025 / std::max(est, 1e-9), 1.0, 512.0));
  double best = est;
  for (int rep = 0; rep < 5; ++rep) best = std::min(best, time_iters(iters));
  return best;
}

int RunGemmReport(const std::string& path) {
  obs::Json cases = obs::Json::Array();
  for (const GemmCase& c : kGemmCases) {
    const double macs = static_cast<double>(c.n) * c.k * c.m;
    const double seed_s = MinSecondsPerCall(c, /*seed=*/true);
    nn::kernels::SetNumThreads(1);
    const double k1_s = MinSecondsPerCall(c, /*seed=*/false);
    nn::kernels::SetNumThreads(4);
    const double k4_s = MinSecondsPerCall(c, /*seed=*/false);
    nn::kernels::SetNumThreads(0);

    obs::Json entry = obs::Json::Object();
    entry.Set("name", c.name);
    entry.Set("op", c.op == GemmOp::kNN   ? "NN"
                    : c.op == GemmOp::kTN ? "TN"
                                          : "NT");
    entry.Set("n", c.n);
    entry.Set("k", c.k);
    entry.Set("m", c.m);
    entry.Set("macs", macs);
    entry.Set("seed_ms", seed_s * 1e3);
    entry.Set("kernel_1t_ms", k1_s * 1e3);
    entry.Set("kernel_4t_ms", k4_s * 1e3);
    entry.Set("seed_gflops", 2.0 * macs / seed_s * 1e-9);
    entry.Set("kernel_1t_gflops", 2.0 * macs / k1_s * 1e-9);
    entry.Set("kernel_4t_gflops", 2.0 * macs / k4_s * 1e-9);
    entry.Set("speedup_1t", seed_s / k1_s);
    entry.Set("speedup_4t", seed_s / k4_s);
    cases.Append(std::move(entry));
  }

  obs::Json host = obs::Json::Object();
  host.Set("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()));
#if defined(E2DTC_BENCH_KERNEL_NATIVE) && E2DTC_BENCH_KERNEL_NATIVE
  host.Set("kernel_native_build", true);
#else
  host.Set("kernel_native_build", false);
#endif
  host.Set("kernel_threads_tested", [] {
    obs::Json a = obs::Json::Array();
    a.Append(1);
    a.Append(4);
    return a;
  }());

  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.gemm.v1");
  root.Set("note",
           "seed_* replays the pre-kernel Tensor loops compiled in this "
           "TU; kernel_* is nn::kernels via the same entry points the "
           "training path uses. Times are best-of-5 min wall time. With "
           "hardware_concurrency < 4 the 4t column measures oversubscribed "
           "dispatch, not parallel scaling.");
  root.Set("timing_policy", "best-of-5 min, iterations scaled to >=25ms");
  root.Set("host", std::move(host));
  root.Set("cases", std::move(cases));

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  return out.good() ? 0 : 1;
}

// --- distance engine + clustering suite ----------------------------------
// Seed-era hot loops replicated verbatim as the honest baselines for the
// tiled batched distance engine and the GEMM-backed k-means assignment.

// Trajectory population matched to the bench presets: 24-56 points, planar
// meters within a ~5 km extent.
std::vector<distance::Polyline> RandomLines(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<distance::Polyline> lines;
  lines.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    lines.push_back(
        RandomLine(&rng, 24 + static_cast<int>(rng.UniformU64(33))));
  }
  return lines;
}

// Seed-era ComputeDistanceMatrix body: one TrajectoryDistance call per pair,
// each paying two fresh DP rows, no batching. Serial — the seed's
// parallelism only sharded rows over threads.
distance::DistanceMatrix SeedDistanceMatrix(
    const std::vector<distance::Polyline>& lines, distance::Metric metric) {
  const int n = static_cast<int>(lines.size());
  distance::DistanceMatrix m(n);
  const distance::MetricParams params;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m.set(i, j,
            distance::TrajectoryDistance(metric, lines[static_cast<size_t>(i)],
                                         lines[static_cast<size_t>(j)],
                                         params));
    }
  }
  return m;
}

cluster::FeatureMatrix RandomFeatures(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  cluster::FeatureMatrix rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(static_cast<size_t>(dim));
    for (auto& v : p) v = static_cast<float>(rng.Gaussian());
    rows.push_back(std::move(p));
  }
  return rows;
}

// Seed-era Lloyd assignment: per (point, centroid) scalar SquaredDistance
// with full double accumulation.
double SeedSquaredDistance(const std::vector<float>& a,
                           const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

double SeedAssign(const cluster::FeatureMatrix& points,
                  const cluster::FeatureMatrix& centroids,
                  std::vector<int>* assignments) {
  const int n = static_cast<int>(points.size());
  const int k = static_cast<int>(centroids.size());
  assignments->assign(static_cast<size_t>(n), 0);
  double inertia = 0.0;
  for (int i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_j = 0;
    for (int j = 0; j < k; ++j) {
      const double d = SeedSquaredDistance(points[static_cast<size_t>(i)],
                                           centroids[static_cast<size_t>(j)]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    (*assignments)[static_cast<size_t>(i)] = best_j;
    inertia += best;
  }
  return inertia;
}

void BM_DistanceMatrixSeed(benchmark::State& state) {
  auto lines = RandomLines(static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SeedDistanceMatrix(lines, distance::Metric::kDtw).data().data());
  }
}
BENCHMARK(BM_DistanceMatrixSeed)->Arg(200);

void BM_DistanceMatrixEngine(benchmark::State& state) {
  auto lines = RandomLines(static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::ComputeDistanceMatrix(lines, distance::Metric::kDtw)
            .data()
            .data());
  }
}
BENCHMARK(BM_DistanceMatrixEngine)->Arg(200);

void BM_KMeansAssignSeed(benchmark::State& state) {
  auto points = RandomFeatures(static_cast<int>(state.range(0)), 128, 32);
  auto centroids = RandomFeatures(20, 128, 33);
  std::vector<int> assignments;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedAssign(points, centroids, &assignments));
  }
}
BENCHMARK(BM_KMeansAssignSeed)->Arg(2000);

void BM_KMeansAssignKernel(benchmark::State& state) {
  auto points = RandomFeatures(static_cast<int>(state.range(0)), 128, 32);
  auto centroids = RandomFeatures(20, 128, 33);
  std::vector<int> assignments;
  double inertia = 0.0;
  for (auto _ : state) {
    cluster::AssignToNearestCentroids(points, centroids, nullptr,
                                      &assignments, nullptr, &inertia);
    benchmark::DoNotOptimize(inertia);
  }
}
BENCHMARK(BM_KMeansAssignKernel)->Arg(2000);

/// Times one invocation of `fn`, best of `reps`.
template <typename Fn>
double MinSeconds(int reps, const Fn& fn) {
  using Clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

int RunDistanceReport(const std::string& path) {
  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.distance.v1");
  root.Set(
      "note",
      "seed_* replays the pre-engine loops compiled in this TU: per-pair "
      "TrajectoryDistance matrix fill and the scalar Lloyd assignment. "
      "engine_*/kernel_* are the tiled lane-batched distance engine "
      "(distance::ComputeDistanceMatrix) and the GEMM-backed assignment "
      "(cluster::AssignToNearestCentroids). Engine threads above "
      "hardware_concurrency are capped (results are bitwise identical at "
      "any thread count either way).");
  obs::Json host = obs::Json::Object();
  host.Set("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()));
#if defined(E2DTC_BENCH_KERNEL_NATIVE) && E2DTC_BENCH_KERNEL_NATIVE
  host.Set("kernel_native_build", true);
#else
  host.Set("kernel_native_build", false);
#endif
  root.Set("host", std::move(host));

  {
    // DTW distance matrix, n = 1000 (~500k pairs).
    const int n = 1000;
    auto lines = RandomLines(n, 31);
    distance::DistanceMatrix seed_m, engine_1t, engine_4t;
    const double seed_s = MinSeconds(2, [&] {
      seed_m = SeedDistanceMatrix(lines, distance::Metric::kDtw);
    });
    // Interleave the 1t/4t reps so a background-load spike on a shared box
    // hits both configurations instead of biasing whichever ran last.
    double e1_s = std::numeric_limits<double>::infinity();
    double e4_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      distance::SetNumThreads(1);
      e1_s = std::min(e1_s, MinSeconds(1, [&] {
               engine_1t = distance::ComputeDistanceMatrix(
                   lines, distance::Metric::kDtw);
             }));
      distance::SetNumThreads(4);
      e4_s = std::min(e4_s, MinSeconds(1, [&] {
               engine_4t = distance::ComputeDistanceMatrix(
                   lines, distance::Metric::kDtw);
             }));
    }
    distance::SetNumThreads(1);
    const bool threads_bitwise =
        std::memcmp(engine_1t.data().data(), engine_4t.data().data(),
                    static_cast<size_t>(n) * n * sizeof(double)) == 0;
    const bool seed_bitwise =
        std::memcmp(engine_1t.data().data(), seed_m.data().data(),
                    static_cast<size_t>(n) * n * sizeof(double)) == 0;

    obs::Json entry = obs::Json::Object();
    entry.Set("name", "dtw_matrix_n1000");
    entry.Set("n", n);
    entry.Set("pairs", static_cast<int64_t>(n) * (n - 1) / 2);
    entry.Set("seed_s", seed_s);
    entry.Set("engine_1t_s", e1_s);
    entry.Set("engine_4t_s", e4_s);
    entry.Set("speedup_1t", seed_s / e1_s);
    entry.Set("speedup_4t", seed_s / e4_s);
    entry.Set("bitwise_equal_across_threads", threads_bitwise);
    entry.Set("bitwise_equal_to_seed", seed_bitwise);
    root.Set("dtw_matrix", std::move(entry));
  }

  {
    // Lloyd assignment, n = 2000 points, dim = 128, k = 20.
    const int n = 2000, dim = 128, k = 20;
    auto points = RandomFeatures(n, dim, 32);
    auto centroids = RandomFeatures(k, dim, 33);
    std::vector<int> seed_assign, kernel_assign, ref_assign;
    double seed_inertia = 0.0, kernel_inertia = 0.0;
    const double seed_s = MinSeconds(5, [&] {
      seed_inertia = SeedAssign(points, centroids, &seed_assign);
    });
    const double kernel_s = MinSeconds(5, [&] {
      cluster::AssignToNearestCentroids(points, centroids, nullptr,
                                        &kernel_assign, nullptr,
                                        &kernel_inertia);
    });
    cluster::ReferenceAssignToNearestCentroids(points, centroids, &ref_assign,
                                               nullptr, nullptr);

    obs::Json entry = obs::Json::Object();
    entry.Set("name", "kmeans_assign_n2000_d128_k20");
    entry.Set("n", n);
    entry.Set("dim", dim);
    entry.Set("k", k);
    entry.Set("seed_ms", seed_s * 1e3);
    entry.Set("kernel_ms", kernel_s * 1e3);
    entry.Set("speedup", seed_s / kernel_s);
    entry.Set("matches_scalar_reference", kernel_assign == ref_assign);
    entry.Set("matches_seed_argmin", kernel_assign == seed_assign);
    entry.Set("seed_inertia", seed_inertia);
    entry.Set("kernel_inertia", kernel_inertia);
    root.Set("kmeans_assign", std::move(entry));
  }

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  return out.good() ? 0 : 1;
}

void BM_GruStepForwardBackward(benchmark::State& state) {
  Rng rng(6);
  const int batch = 32;
  const int hidden = static_cast<int>(state.range(0));
  nn::GruCell cell(hidden, hidden, &rng);
  nn::Tensor x_val = nn::Tensor::Gaussian(batch, hidden, 1.0f, &rng);
  nn::Tensor h_val = nn::Tensor::Gaussian(batch, hidden, 0.3f, &rng);
  for (auto _ : state) {
    nn::Var x = nn::Var::Leaf(x_val, true);
    nn::Var h = nn::Var::Constant(h_val);
    nn::Var out = nn::Sum(nn::Square(cell.Forward(x, h)));
    nn::Backward(out);
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_GruStepForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_KnnProximityLoss(benchmark::State& state) {
  Rng rng(7);
  const int n = 64, k = 16, vocab = 2000, hidden = 64;
  nn::KnnCandidates cand;
  cand.k = k;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      cand.indices.push_back(
          static_cast<int>(rng.UniformU64(vocab)));
      cand.weights.push_back(c == 0 ? 0.7f : 0.3f / (k - 1));
    }
  }
  nn::Tensor h_val = nn::Tensor::Gaussian(n, hidden, 1.0f, &rng);
  nn::Var w = nn::Var::Leaf(nn::Tensor::Gaussian(vocab, hidden, 0.1f, &rng),
                            true);
  nn::Var b = nn::Var::Leaf(nn::Tensor(vocab, 1), true);
  for (auto _ : state) {
    nn::Var h = nn::Var::Leaf(h_val, true);
    nn::Var loss = nn::KnnProximityLoss(h, w, b, cand);
    nn::Backward(loss);
    w.node()->ZeroGrad();
    b.node()->ZeroGrad();
    benchmark::DoNotOptimize(loss.value().scalar());
  }
}
BENCHMARK(BM_KnnProximityLoss);

// --- fused softmax / KNN-loss kernels + kernel autotuner ------------------
// Seed-era scalar bodies replicated verbatim (the pre-fusion autograd.cc
// SoftmaxRows and losses.cc KnnProximityLoss loops) as the honest baselines
// for kernels::SoftmaxRows*/KnnLoss*. The fused kernels promise bitwise
// identical outputs, so the report memcmps every tensor as well as timing.

void SeedSoftmaxRowsForward(const float* x, float* y, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* r = x + static_cast<size_t>(i) * cols;
    float* o = y + static_cast<size_t>(i) * cols;
    float mx = r[0];
    for (int j = 1; j < cols; ++j) mx = std::max(mx, r[j]);
    double denom = 0.0;
    for (int j = 0; j < cols; ++j) {
      o[j] = std::exp(r[j] - mx);
      denom += o[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < cols; ++j) o[j] *= inv;
  }
}

void SeedSoftmaxRowsBackwardAdd(const float* y, const float* g, float* dx,
                                int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* yr = y + static_cast<size_t>(i) * cols;
    const float* gr = g + static_cast<size_t>(i) * cols;
    float* d = dx + static_cast<size_t>(i) * cols;
    double dot = 0.0;
    for (int j = 0; j < cols; ++j) dot += gr[j] * yr[j];
    for (int j = 0; j < cols; ++j) {
      d[j] += yr[j] * (gr[j] - static_cast<float>(dot));
    }
  }
}

double SeedKnnLossForward(const float* h, const float* w, const float* b,
                          const int* indices, const float* weights, int n,
                          int k, int hidden, float* probs) {
  double total = 0.0;
  std::vector<float> logits(static_cast<size_t>(k));
  for (int i = 0; i < n; ++i) {
    const float* hrow = h + static_cast<size_t>(i) * hidden;
    float mx = -1e30f;
    for (int c = 0; c < k; ++c) {
      const int cell = indices[static_cast<size_t>(i) * k + c];
      const float* wrow = w + static_cast<size_t>(cell) * hidden;
      const double dot = b[cell] + nn::kernels::Dot(wrow, hrow, hidden);
      logits[static_cast<size_t>(c)] = static_cast<float>(dot);
      mx = std::max(mx, logits[static_cast<size_t>(c)]);
    }
    double denom = 0.0;
    for (int c = 0; c < k; ++c) {
      denom += std::exp(logits[static_cast<size_t>(c)] - mx);
    }
    const double log_denom = std::log(denom) + mx;
    for (int c = 0; c < k; ++c) {
      const double logp = logits[static_cast<size_t>(c)] - log_denom;
      probs[static_cast<size_t>(i) * k + c] =
          static_cast<float>(std::exp(logp));
      total -= weights[static_cast<size_t>(i) * k + c] * logp;
    }
  }
  return total;
}

void SeedKnnLossBackwardAdd(const float* h, const float* w,
                            const int* indices, const float* weights,
                            const float* probs, float g, int n, int k,
                            int hidden, float* dh, float* dw, float* db) {
  for (int i = 0; i < n; ++i) {
    const float* hrow = h + static_cast<size_t>(i) * hidden;
    float* hgrad = dh + static_cast<size_t>(i) * hidden;
    for (int c = 0; c < k; ++c) {
      const size_t flat = static_cast<size_t>(i) * k + c;
      const float dlogit = g * (probs[flat] - weights[flat]);
      if (dlogit == 0.0f) continue;
      const int cell = indices[flat];
      const float* wrow = w + static_cast<size_t>(cell) * hidden;
      nn::kernels::Axpy(dlogit, wrow, hgrad, hidden);
      nn::kernels::Axpy(dlogit, hrow,
                        dw + static_cast<size_t>(cell) * hidden, hidden);
      db[cell] += dlogit;
    }
  }
}

struct SoftmaxBenchData {
  int rows, cols;
  std::vector<float> x, g, y, dx;
  explicit SoftmaxBenchData(int rows_in, int cols_in)
      : rows(rows_in), cols(cols_in) {
    Rng rng(21);
    const size_t elems = static_cast<size_t>(rows) * cols;
    x.resize(elems);
    g.resize(elems);
    y.resize(elems);
    dx.resize(elems, 0.0f);
    for (auto& v : x) v = static_cast<float>(rng.Gaussian());
    for (auto& v : g) v = static_cast<float>(rng.Gaussian());
  }
  void RunSeed() {
    SeedSoftmaxRowsForward(x.data(), y.data(), rows, cols);
    SeedSoftmaxRowsBackwardAdd(y.data(), g.data(), dx.data(), rows, cols);
  }
  void RunFused() {
    nn::kernels::SoftmaxRowsForward(x.data(), y.data(), rows, cols);
    nn::kernels::SoftmaxRowsBackwardAdd(y.data(), g.data(), dx.data(), rows,
                                        cols);
  }
};

struct KnnBenchData {
  int n, k, vocab, hidden;
  std::vector<float> h, w, b, weights, probs, dh, dw, db;
  std::vector<int> indices;
  double loss = 0.0;
  KnnBenchData(int n_in, int k_in, int vocab_in, int hidden_in)
      : n(n_in), k(k_in), vocab(vocab_in), hidden(hidden_in) {
    Rng rng(22);
    h.resize(static_cast<size_t>(n) * hidden);
    w.resize(static_cast<size_t>(vocab) * hidden);
    b.resize(static_cast<size_t>(vocab));
    for (auto& v : h) v = static_cast<float>(rng.Gaussian());
    for (auto& v : w) v = 0.1f * static_cast<float>(rng.Gaussian());
    for (auto& v : b) v = 0.01f * static_cast<float>(rng.Gaussian());
    indices.resize(static_cast<size_t>(n) * k);
    weights.resize(static_cast<size_t>(n) * k);
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        indices[static_cast<size_t>(i) * k + c] =
            static_cast<int>(rng.UniformU64(static_cast<uint64_t>(vocab)));
        weights[static_cast<size_t>(i) * k + c] =
            c == 0 ? 0.7f : 0.3f / (k - 1);
      }
    }
    probs.resize(static_cast<size_t>(n) * k);
    dh.resize(h.size());
    dw.resize(w.size());
    db.resize(b.size());
  }
  void ZeroGrads() {
    std::fill(dh.begin(), dh.end(), 0.0f);
    std::fill(dw.begin(), dw.end(), 0.0f);
    std::fill(db.begin(), db.end(), 0.0f);
  }
  void RunSeed() {
    loss = SeedKnnLossForward(h.data(), w.data(), b.data(), indices.data(),
                              weights.data(), n, k, hidden, probs.data());
    SeedKnnLossBackwardAdd(h.data(), w.data(), indices.data(),
                           weights.data(), probs.data(), 1.0f, n, k, hidden,
                           dh.data(), dw.data(), db.data());
  }
  void RunFused() {
    loss = nn::kernels::KnnLossForward(h.data(), w.data(), b.data(),
                                       indices.data(), weights.data(), n, k,
                                       hidden, probs.data());
    nn::kernels::KnnLossBackwardAdd(h.data(), w.data(), indices.data(),
                                    weights.data(), probs.data(), 1.0f, n, k,
                                    hidden, dh.data(), dw.data(), db.data());
  }
};

void BM_SoftmaxRowsSeed(benchmark::State& state) {
  SoftmaxBenchData d(1024, 512);
  for (auto _ : state) {
    d.RunSeed();
    benchmark::DoNotOptimize(d.dx.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{d.rows} * d.cols);
}
BENCHMARK(BM_SoftmaxRowsSeed);

void BM_SoftmaxRowsFused(benchmark::State& state) {
  SoftmaxBenchData d(1024, 512);
  for (auto _ : state) {
    d.RunFused();
    benchmark::DoNotOptimize(d.dx.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{d.rows} * d.cols);
}
BENCHMARK(BM_SoftmaxRowsFused);

void BM_KnnLossSeed(benchmark::State& state) {
  KnnBenchData d(1024, 20, 2000, 256);
  for (auto _ : state) {
    d.RunSeed();
    benchmark::DoNotOptimize(d.dh.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{d.n} * d.k *
                          d.hidden);
}
BENCHMARK(BM_KnnLossSeed);

void BM_KnnLossFused(benchmark::State& state) {
  KnnBenchData d(1024, 20, 2000, 256);
  for (auto _ : state) {
    d.RunFused();
    benchmark::DoNotOptimize(d.dh.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{d.n} * d.k *
                          d.hidden);
}
BENCHMARK(BM_KnnLossFused);

void BM_AutotuneProbe(benchmark::State& state) {
  nn::kernels::AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.min_sample_ms = 0.5;
  for (auto _ : state) {
    nn::kernels::TuningProfile p = nn::kernels::RunAutotuneProbe(opts);
    benchmark::DoNotOptimize(p.probe_ms);
  }
}
BENCHMARK(BM_AutotuneProbe);

int RunAutotuneReport(const std::string& path) {
  // --- fused softmax: scalar replay vs kernels, bitwise + time ---
  const int sm_rows = 1024, sm_cols = 512;
  SoftmaxBenchData sm_seed(sm_rows, sm_cols);
  SoftmaxBenchData sm_fused(sm_rows, sm_cols);
  sm_seed.RunSeed();
  nn::kernels::SetNumThreads(4);
  sm_fused.RunFused();
  nn::kernels::SetNumThreads(0);
  bool bitwise_ok =
      std::memcmp(sm_seed.y.data(), sm_fused.y.data(),
                  sm_seed.y.size() * sizeof(float)) == 0 &&
      std::memcmp(sm_seed.dx.data(), sm_fused.dx.data(),
                  sm_seed.dx.size() * sizeof(float)) == 0;

  auto time_softmax = [&](SoftmaxBenchData* d, bool seed) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 7; ++rep) {
      std::fill(d->dx.begin(), d->dx.end(), 0.0f);
      best = std::min(best, MinSeconds(1, [&] {
                        seed ? d->RunSeed() : d->RunFused();
                        benchmark::DoNotOptimize(d->dx.data());
                      }));
    }
    return best;
  };
  const double sm_seed_s = time_softmax(&sm_seed, /*seed=*/true);
  nn::kernels::SetNumThreads(1);
  const double sm_f1_s = time_softmax(&sm_fused, /*seed=*/false);
  nn::kernels::SetNumThreads(4);
  const double sm_f4_s = time_softmax(&sm_fused, /*seed=*/false);
  nn::kernels::SetNumThreads(0);

  // --- fused KNN loss at the acceptance shape ---
  const int kn_n = 1024, kn_k = 20, kn_vocab = 2000, kn_hidden = 256;
  KnnBenchData kn_seed(kn_n, kn_k, kn_vocab, kn_hidden);
  KnnBenchData kn_fused(kn_n, kn_k, kn_vocab, kn_hidden);
  kn_seed.ZeroGrads();
  kn_seed.RunSeed();
  kn_fused.ZeroGrads();
  nn::kernels::SetNumThreads(4);
  kn_fused.RunFused();
  nn::kernels::SetNumThreads(0);
  // probs and all three gradients must match the scalar replay bit for
  // bit; the loss total regrouped per-sample partials, so it gets a
  // relative tolerance instead of memcmp.
  bitwise_ok = bitwise_ok &&
               std::memcmp(kn_seed.probs.data(), kn_fused.probs.data(),
                           kn_seed.probs.size() * sizeof(float)) == 0 &&
               std::memcmp(kn_seed.dh.data(), kn_fused.dh.data(),
                           kn_seed.dh.size() * sizeof(float)) == 0 &&
               std::memcmp(kn_seed.dw.data(), kn_fused.dw.data(),
                           kn_seed.dw.size() * sizeof(float)) == 0 &&
               std::memcmp(kn_seed.db.data(), kn_fused.db.data(),
                           kn_seed.db.size() * sizeof(float)) == 0;
  const double loss_rel_err =
      std::abs(kn_seed.loss - kn_fused.loss) /
      std::max(1.0, std::abs(kn_seed.loss));
  const bool loss_ok = loss_rel_err < 1e-9;

  auto time_knn = [&](KnnBenchData* d, bool seed) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 7; ++rep) {
      d->ZeroGrads();
      best = std::min(best, MinSeconds(1, [&] {
                        seed ? d->RunSeed() : d->RunFused();
                        benchmark::DoNotOptimize(d->dh.data());
                      }));
    }
    return best;
  };
  const double kn_seed_s = time_knn(&kn_seed, /*seed=*/true);
  nn::kernels::SetNumThreads(1);
  const double kn_f1_s = time_knn(&kn_fused, /*seed=*/false);
  nn::kernels::SetNumThreads(4);
  const double kn_f4_s = time_knn(&kn_fused, /*seed=*/false);

  // --- autotune probe + tuned-vs-default GEMM dispatch ---
  // Probed at 4 kernel threads like a tuned training run; the tuned
  // profile only moves dispatch parameters, so outputs stay bitwise
  // identical (asserted in tests; the gates above cover the kernels).
  nn::kernels::ResetTuningProfile();
  const nn::kernels::TuningProfile profile =
      nn::kernels::RunAutotuneProbe();
  obs::Json tuned_cases = obs::Json::Array();
  double tuned_speedup_product = 1.0;
  for (const GemmCase& c : kGemmCases) {
    nn::kernels::ResetTuningProfile();
    const double default_s = MinSecondsPerCall(c, /*seed=*/false);
    nn::kernels::SetTuningProfile(profile);
    const double tuned_s = MinSecondsPerCall(c, /*seed=*/false);
    nn::kernels::ResetTuningProfile();
    const double speedup = default_s / tuned_s;
    tuned_speedup_product *= speedup;
    obs::Json entry = obs::Json::Object();
    entry.Set("name", c.name);
    entry.Set("default_ms", default_s * 1e3);
    entry.Set("tuned_ms", tuned_s * 1e3);
    entry.Set("tuned_speedup", speedup);
    tuned_cases.Append(std::move(entry));
  }
  const double tuned_geomean =
      std::pow(tuned_speedup_product, 1.0 / std::size(kGemmCases));
  nn::kernels::SetNumThreads(0);

  const double sm_speedup_1t = sm_seed_s / sm_f1_s;
  const double sm_speedup_4t = sm_seed_s / sm_f4_s;
  const double kn_speedup_1t = kn_seed_s / kn_f1_s;
  const double kn_speedup_4t = kn_seed_s / kn_f4_s;
  // The 3x target budgets roughly 2x from ILP (panelized dots, grouped
  // scatter) times parallel scaling across >= 4 real cores. On a host
  // without 4 cores the sample-parallel term cannot materialize — "4
  // threads" shares one core — so the gate falls back to the ILP-only
  // floor of 1.8x. The JSON records which gate applied.
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  const double kn_target = hw_threads >= 4 ? 3.0 : 1.8;
  const bool pass = bitwise_ok && loss_ok && kn_speedup_4t >= kn_target;

  obs::Json softmax = obs::Json::Object();
  softmax.Set("rows", sm_rows);
  softmax.Set("cols", sm_cols);
  softmax.Set("seed_ms", sm_seed_s * 1e3);
  softmax.Set("fused_1t_ms", sm_f1_s * 1e3);
  softmax.Set("fused_4t_ms", sm_f4_s * 1e3);
  softmax.Set("speedup_1t", sm_speedup_1t);
  softmax.Set("speedup_4t", sm_speedup_4t);

  obs::Json knn = obs::Json::Object();
  knn.Set("n", kn_n);
  knn.Set("k", kn_k);
  knn.Set("vocab", kn_vocab);
  knn.Set("hidden", kn_hidden);
  knn.Set("seed_ms", kn_seed_s * 1e3);
  knn.Set("fused_1t_ms", kn_f1_s * 1e3);
  knn.Set("fused_4t_ms", kn_f4_s * 1e3);
  knn.Set("speedup_1t", kn_speedup_1t);
  knn.Set("speedup_4t", kn_speedup_4t);
  knn.Set("speedup_4t_target", 3.0);
  knn.Set("speedup_4t_target_applied", kn_target);
  knn.Set("target_note",
          "3.0x assumes >= 4 real cores for the sample-parallel term; on "
          "hosts with hardware_concurrency < 4 the gate is the ILP-only "
          "floor 1.8x (panel dots + grouped scatter, single core)");
  knn.Set("loss_rel_err", loss_rel_err);

  obs::Json tuning = obs::Json::Object();
  tuning.Set("profile", nn::kernels::TuningProfileJson(profile));
  tuning.Set("probe_ms", profile.probe_ms);
  tuning.Set("cases", std::move(tuned_cases));
  tuning.Set("tuned_speedup_geomean", tuned_geomean);

  obs::Json host = obs::Json::Object();
  host.Set("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()));
#if defined(E2DTC_BENCH_KERNEL_NATIVE) && E2DTC_BENCH_KERNEL_NATIVE
  host.Set("kernel_native_build", true);
#else
  host.Set("kernel_native_build", false);
#endif

  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.autotune.v1");
  root.Set("note",
           "seed_* replays the pre-fusion scalar loops compiled in this "
           "TU (autograd.cc SoftmaxRows / losses.cc KnnProximityLoss "
           "bodies over kernels::Dot/Axpy); fused_* is "
           "kernels::SoftmaxRows*/KnnLoss* via the training entry points. "
           "probs/dh/dw/db must memcmp-match the scalar replay; the loss "
           "total regrouped per-sample partials and carries a relative "
           "tolerance. Times are best-of-7 min wall time, forward+backward "
           "per call, gradient zeroing outside the timed region. With "
           "hardware_concurrency < 4 the 4t columns measure oversubscribed "
           "dispatch, not parallel scaling.");
  root.Set("timing_policy", "best-of-7 min, fwd+bwd per call");
  root.Set("host", std::move(host));
  root.Set("softmax", std::move(softmax));
  root.Set("knn_loss", std::move(knn));
  root.Set("kernel_tuning", std::move(tuning));
  root.Set("bitwise_identical", bitwise_ok);
  root.Set("pass", pass);

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  if (!out.good()) return 1;

  // Companion JSONL so `e2dtc_report --compare` can gate fused-kernel and
  // autotuner regressions (speedup series improve upward).
  std::ofstream series(path + ".series.jsonl");
  if (series) {
    auto sample = [&](const std::string& name, double value) {
      obs::Json line = obs::Json::Object();
      line.Set("type", "sample");
      line.Set("series", name);
      line.Set("step", 0);
      line.Set("value", value);
      series << line.Dump() << "\n";
    };
    sample("autotune.softmax_fused_speedup_1t", sm_speedup_1t);
    sample("autotune.softmax_fused_speedup_4t", sm_speedup_4t);
    sample("autotune.knn_fused_speedup_1t", kn_speedup_1t);
    sample("autotune.knn_fused_speedup_4t", kn_speedup_4t);
    sample("autotune.gemm_tuned_speedup_geomean", tuned_geomean);
    sample("autotune.probe_ms", profile.probe_ms);
  }

  std::printf(
      "autotune report: softmax fused %.1fx/%.1fx (1t/4t), knn loss fused "
      "%.1fx/%.1fx (target >=%.1f at 4t, %d hw threads), gemm tuned "
      "geomean %.2fx, probe %.0f ms, bitwise %s -> %s\n",
      sm_speedup_1t, sm_speedup_4t, kn_speedup_1t, kn_speedup_4t, kn_target,
      hw_threads, tuned_geomean, profile.probe_ms,
      bitwise_ok && loss_ok ? "identical" : "MISMATCH",
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

void BM_KMeansIteration(benchmark::State& state) {
  Rng rng(8);
  const int n = static_cast<int>(state.range(0));
  cluster::FeatureMatrix pts;
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(32);
    for (auto& v : p) v = static_cast<float>(rng.Gaussian());
    pts.push_back(std::move(p));
  }
  cluster::KMeansOptions opts;
  opts.k = 8;
  opts.max_iters = 5;
  opts.num_init = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::KMeans(pts, opts)->inertia);
  }
}
BENCHMARK(BM_KMeansIteration)->Range(128, 1024);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(9);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::SolveAssignment(cost)->total_cost);
  }
}
BENCHMARK(BM_Hungarian)->Range(8, 64);

void BM_SkipGramEpoch(benchmark::State& state) {
  Rng rng(10);
  std::vector<std::vector<int>> corpus;
  for (int s = 0; s < 100; ++s) {
    std::vector<int> seq;
    for (int t = 0; t < 30; ++t) {
      seq.push_back(4 + static_cast<int>(rng.UniformU64(500)));
    }
    corpus.push_back(std::move(seq));
  }
  embedding::SkipGramConfig cfg;
  cfg.dim = 32;
  cfg.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embedding::TrainSkipGram(corpus, 504, cfg)->data());
  }
}
BENCHMARK(BM_SkipGramEpoch);

// --- obs overhead --------------------------------------------------------
// The disabled variants are the numbers that matter: instrumentation sits
// on training hot paths and must cost a single relaxed atomic load when no
// sink is attached (<2% of any real batch).

void BM_CounterIncrementDisabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(false);
  obs::Counter counter =
      obs::Registry::Global().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_CounterIncrementEnabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::Counter counter =
      obs::Registry::Global().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_CounterIncrementEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(false);
  obs::Histogram hist = obs::Registry::Global().histogram(
      "bench.micro.hist", obs::ExponentialBuckets(1.0, 2.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v += 0.5;
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::Histogram hist = obs::Registry::Global().histogram(
      "bench.micro.hist", obs::ExponentialBuckets(1.0, 2.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v += 0.5;
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // Tracing off (the default): a span is one relaxed load + no clock reads.
  for (auto _ : state) {
    E2DTC_TRACE_SPAN("bench.micro.span");
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::StartTracing();
  for (auto _ : state) {
    E2DTC_TRACE_SPAN("bench.micro.span");
  }
  obs::StopTracing();
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_SeriesRecordDisabled(benchmark::State& state) {
  // The acceptance bar for telemetry: with the switch off (the default), a
  // Series::Record site must cost the same relaxed-load-plus-untaken-branch
  // as the obs::Counter sites (~1.5 ns), i.e. zero measurable slowdown on
  // uninstrumented runs.
  obs::EnableTelemetry(false);
  obs::TimeSeriesRecorder rec;
  obs::Series series = rec.series("bench.micro.series");
  int64_t step = 0;
  for (auto _ : state) {
    series.Record(step++, 1.0);
  }
}
BENCHMARK(BM_SeriesRecordDisabled);

void BM_SeriesRecordEnabled(benchmark::State& state) {
  obs::EnableTelemetry(true);
  obs::TimeSeriesRecorder rec;
  obs::Series series = rec.series("bench.micro.series");
  int64_t step = 0;
  for (auto _ : state) {
    series.Record(step++, 1.0);
  }
  obs::EnableTelemetry(false);
}
BENCHMARK(BM_SeriesRecordEnabled);

/// Populates the global registry + recorder with a training-shaped set of
/// metrics so exposition benchmarks render a realistic document, and
/// returns handles for the hot-loop workload to record through.
struct ObsHttpWorkloadInstruments {
  obs::Counter batches;
  obs::Histogram batch_ms;
  obs::Series loss;
};

ObsHttpWorkloadInstruments PopulateObsHttpWorkload() {
  obs::Registry& reg = obs::Registry::Global();
  for (int i = 0; i < 16; ++i) {
    reg.counter("bench.obshttp.counter" + std::to_string(i)).Increment(i);
    reg.gauge("bench.obshttp.gauge" + std::to_string(i)).Set(i * 0.5);
  }
  obs::Histogram hist = reg.histogram("bench.obshttp.batch_ms",
                                      obs::ExponentialBuckets(0.1, 2.0, 14));
  for (int i = 0; i < 256; ++i) hist.Record(0.1 * i);
  obs::TimeSeriesRecorder& rec = obs::TimeSeriesRecorder::Global();
  for (int s = 0; s < 8; ++s) {
    obs::Series series =
        rec.series("bench.obshttp.series" + std::to_string(s));
    for (int i = 0; i < 512; ++i) series.Record(i, 1.0 / (1 + i));
  }
  return ObsHttpWorkloadInstruments{
      reg.counter("bench.obshttp.batches"),
      hist,
      rec.series("bench.obshttp.loss"),
  };
}

void BM_MetricsExposition(benchmark::State& state) {
  // Full /metrics render over a training-shaped registry: counters, gauges,
  // a histogram with quantile synthesis, and telemetry latest-sample gauges.
  const bool metrics_was = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::EnableTelemetry(true);
  PopulateObsHttpWorkload();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = obs::PrometheusTextFromGlobals();
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  obs::EnableTelemetry(false);
  obs::EnableMetrics(metrics_was);
}
BENCHMARK(BM_MetricsExposition);

/// One blocking GET against 127.0.0.1:`port`; returns bytes received (0 on
/// failure). The bench-side scraper mirrors what Prometheus does to a
/// training run: full TCP round trip, read to EOF.
size_t ScrapeOnce(int port, const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  char request[128];
  const int len = std::snprintf(
      request, sizeof(request),
      "GET %s HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n", target);
  (void)::send(fd, request, static_cast<size_t>(len), MSG_NOSIGNAL);
  size_t total = 0;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    total += static_cast<size_t>(n);
  }
  ::close(fd);
  return total;
}

/// Runs `steps` simulated training steps (a GEMM at GRU-gate shape plus the
/// per-batch instrumentation writes) and returns the median step
/// milliseconds. The median is the right statistic for the scrape-overhead
/// question: a 1 Hz scraper perturbs a handful of steps, and the claim under
/// test is that the typical step does not move.
double MedianStepMs(int steps, ObsHttpWorkloadInstruments& inst) {
  constexpr int kDim = 96;  // hidden 32, 3 gates: the pretrain GEMM shape
  std::vector<float> a(kDim * kDim, 0.5f);
  std::vector<float> b(kDim * kDim, 0.25f);
  std::vector<float> c(kDim * kDim, 0.0f);
  std::vector<double> ms(static_cast<size_t>(steps));
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < steps; ++i) {
    const auto t0 = Clock::now();
    for (int rep = 0; rep < 8; ++rep) {
      nn::kernels::MatmulNN(kDim, kDim, kDim, a.data(), b.data(), c.data(),
                            /*accumulate=*/false);
    }
    inst.batches.Increment();
    inst.batch_ms.Record(1.0);
    inst.loss.Record(i, 1.0 / (1 + i));
    ms[static_cast<size_t>(i)] =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  std::nth_element(ms.begin(), ms.begin() + steps / 2, ms.end());
  return ms[static_cast<size_t>(steps / 2)];
}

int RunObsHttpScrapeReport(const std::string& path) {
  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.obs_http.v1");
  root.Set(
      "note",
      "Median simulated-training-step time without and with the live "
      "introspection server being scraped at 1 Hz (full HTTP GET /metrics "
      "round trips from a separate thread). within_noise requires the "
      "scraped median to stay within 10% + 20us of the baseline: exposition "
      "renders from atomic snapshots on server threads, so the hot path "
      "should not feel the scraper.");

  obs::EnableMetrics(true);
  obs::EnableTelemetry(true);
  ObsHttpWorkloadInstruments inst = PopulateObsHttpWorkload();
  // ~2.5 s per arm at ~0.16 ms/step, so the 1 Hz scraper lands a handful of
  // full GET round trips inside the measured window.
  const int kSteps = 15000;
  (void)MedianStepMs(500, inst);  // warm caches and the kernel thread pool
  const double baseline_ms = MedianStepMs(kSteps, inst);

  obs::HttpServer server({});
  core::RegisterIntrospectionEndpoints(&server);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "obs_http bench: server start failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::atomic<size_t> last_bytes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      last_bytes.store(ScrapeOnce(server.port(), "/metrics"),
                       std::memory_order_relaxed);
      scrapes.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < 100 && !stop.load(std::memory_order_relaxed); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  });
  const double scraped_ms = MedianStepMs(kSteps, inst);
  stop.store(true);
  scraper.join();
  server.Stop();
  obs::EnableTelemetry(false);
  obs::EnableMetrics(false);

  const double ratio = scraped_ms / std::max(baseline_ms, 1e-9);
  const bool within_noise = scraped_ms <= baseline_ms * 1.10 + 0.02;
  root.Set("steps_per_arm", kSteps);
  root.Set("baseline_median_step_ms", baseline_ms);
  root.Set("scraped_median_step_ms", scraped_ms);
  root.Set("ratio", ratio);
  root.Set("scrapes_completed", scrapes.load());
  root.Set("exposition_bytes",
           static_cast<uint64_t>(last_bytes.load()));
  root.Set("within_noise", within_noise);

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  if (!out.good()) return 1;
  std::printf(
      "obs http scrape overhead: baseline %.4f ms, scraped %.4f ms "
      "(%d scrapes, %zu B exposition) -> %s\n",
      baseline_ms, scraped_ms, scrapes.load(), last_bytes.load(),
      within_noise ? "within noise" : "REGRESSED");
  return 0;
}

/// --telemetry_overhead=PATH: times the disabled telemetry recording path
/// against the obs::Counter sites already accepted on the hot paths and
/// writes a JSON verdict. Template (not std::function) so each op inlines
/// into its timing loop — a ~1.5 ns op would otherwise drown in call
/// overhead.
template <typename Op>
double BestNsPerCall(Op op) {
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 1 << 23;  // ~8M calls, ~12 ms per rep at 1.5 ns
  auto run = [&] {
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) op(i);
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
               .count() /
           kIters;
  };
  double best = run();  // first rep also warms instruction caches
  for (int rep = 0; rep < 5; ++rep) best = std::min(best, run());
  return best;
}

int RunTelemetryOverheadReport(const std::string& path) {
  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.telemetry_overhead.v1");
  root.Set(
      "note",
      "Disabled-path cost of a telemetry Series::Record site vs the "
      "obs::Counter sites already on the training hot paths. Both compile "
      "to one relaxed atomic load and an untaken branch, so "
      "disabled_within_noise requires the Series site to cost at most 1.5x "
      "the Counter site plus 0.5 ns of timer jitter. enabled_ns is the "
      "opt-in cost (mutex-guarded ring append), paid only under "
      "--telemetry-out.");

  obs::EnableMetrics(false);
  obs::EnableTelemetry(false);
  obs::TimeSeriesRecorder rec;
  obs::Series series = rec.series("bench.telemetry.series");
  obs::Counter counter =
      obs::Registry::Global().counter("bench.telemetry.counter");

  const double counter_ns =
      BestNsPerCall([&](int) { counter.Increment(); });
  const double series_ns =
      BestNsPerCall([&](int i) { series.Record(i, 1.0); });
  obs::EnableTelemetry(true);
  const double enabled_ns =
      BestNsPerCall([&](int i) { series.Record(i, 1.0); });
  obs::EnableTelemetry(false);

  root.Set("counter_disabled_ns", counter_ns);
  root.Set("series_disabled_ns", series_ns);
  root.Set("series_enabled_ns", enabled_ns);
  root.Set("disabled_ratio", series_ns / std::max(counter_ns, 1e-9));
  root.Set("disabled_within_noise", series_ns <= counter_ns * 1.5 + 0.5);

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  if (!out.good()) return 1;
  std::printf(
      "telemetry overhead: counter %.2f ns, series disabled %.2f ns, "
      "series enabled %.2f ns -> %s\n",
      counter_ns, series_ns, enabled_ns,
      series_ns <= counter_ns * 1.5 + 0.5 ? "within noise" : "REGRESSED");
  return 0;
}

// ---------------------------------------------------------------------------
// Serving plane: batcher throughput, HTTP round trips, and the overload
// replay behind bench_results/BENCH_serve.json.

/// One trained pipeline + ServeContext shared by every serve benchmark.
/// Fitting takes a couple of seconds, so it is built lazily on first use
/// and leaked (benchmarks exit right after).
struct ServeBenchState {
  data::Dataset dataset;
  std::unique_ptr<serve::ServeContext> context;
};

ServeBenchState& GetServeBenchState() {
  static ServeBenchState* state = [] {
    auto* s = new ServeBenchState();
    data::SyntheticCityConfig cfg;
    cfg.num_pois = 3;
    cfg.trajectories_per_poi = 40;
    cfg.min_points = 24;
    cfg.max_points = 48;
    cfg.span_meters = 12000.0;
    cfg.seed = 3;
    s->dataset = data::RelabelDataset(
                     data::GenerateSyntheticCity(cfg).value(),
                     data::GroundTruthConfig{})
                     .value();
    core::E2dtcConfig train;
    train.model.embedding_dim = 24;
    train.model.hidden_size = 24;
    train.model.num_layers = 2;
    train.model.knn_k = 8;
    train.model.cell_meters = 400.0;
    train.pretrain.epochs = 3;
    train.self_train.max_iters = 2;
    auto pipeline = core::E2dtcPipeline::Fit(s->dataset, train).value();
    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_serve_model.e2dtc")
            .string();
    if (!pipeline->Save(path).ok()) std::abort();
    s->context = std::move(serve::ServeContext::Open(path).value());
    return s;
  }();
  return *state;
}

serve::ServeRequest MakeAssignRequest(const ServeBenchState& s, size_t i) {
  serve::ServeRequest request;
  request.kind = serve::RequestKind::kAssign;
  request.adapt = false;
  request.deadline_ms = 10000;
  request.trajectories = {
      s.dataset.trajectories[i % s.dataset.trajectories.size()]};
  return request;
}

/// Batcher throughput: `range(0)` concurrent single-trajectory assigns per
/// iteration, all coalesced by the service into shared forward passes.
void BM_ServeBatcher(benchmark::State& state) {
  ServeBenchState& s = GetServeBenchState();
  serve::ServeOptions opts;
  opts.default_deadline_ms = 10000;
  serve::ServeService service(s.context.get(), opts);
  while (!service.ready()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const size_t burst = static_cast<size_t>(state.range(0));
  std::vector<std::future<serve::ServeResult>> futures(burst);
  size_t i = 0;
  for (auto _ : state) {
    for (size_t b = 0; b < burst; ++b) {
      while (service.Submit(MakeAssignRequest(s, i++), &futures[b]) !=
             serve::Admit::kOk) {
        std::this_thread::yield();  // queue full: wait, don't drop
      }
    }
    for (size_t b = 0; b < burst; ++b) {
      benchmark::DoNotOptimize(futures[b].get());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(burst));
  service.Drain();
}
BENCHMARK(BM_ServeBatcher)->Arg(1)->Arg(8)->Arg(32);

/// One blocking POST against 127.0.0.1:`port`; returns bytes received.
size_t PostOnce(int port, const char* target, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  std::string request = "POST ";
  request += target;
  request += " HTTP/1.1\r\nHost: b\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\nConnection: close\r\n\r\n";
  request += body;
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  size_t total = 0;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    total += static_cast<size_t>(n);
  }
  ::close(fd);
  return total;
}

/// Full HTTP round trip: socket connect, POST /v1/assign, parse, batch,
/// forward pass, JSON response. The end-to-end cost a client of the serve
/// subcommand actually pays.
void BM_ServeEndToEnd(benchmark::State& state) {
  ServeBenchState& s = GetServeBenchState();
  serve::ServeOptions opts;
  opts.default_deadline_ms = 10000;
  serve::ServeService service(s.context.get(), opts);
  obs::HttpServer server({});
  serve::RegisterServeEndpoints(&server, &service);
  std::string error;
  if (!server.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  while (!service.ready()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string body =
      R"({"trajectories":[{"points":[[120.1,30.2],[120.15,30.25]]}]})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(PostOnce(server.port(), "/v1/assign", body));
  }
  state.SetItemsProcessed(state.iterations());
  server.Stop();
  service.Drain();
}
BENCHMARK(BM_ServeEndToEnd);

struct ServeArmResult {
  int multiplier = 0;
  double offered_qps = 0;
  double served_qps = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  double shed_rate = 0;
  double p99_ms = 0;
};

double Percentile99(std::vector<double>* v) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  return (*v)[std::min(v->size() * 99 / 100, v->size() - 1)];
}

/// Offers `offered_qps` of single-trajectory assigns open-loop for
/// `seconds` (shed requests are counted, not retried), then harvests every
/// accepted future and reports served QPS / p99 / shed rate.
ServeArmResult RunServeArm(ServeBenchState& s, serve::ServeService* service,
                           int multiplier, double offered_qps,
                           double seconds) {
  ServeArmResult arm;
  arm.multiplier = multiplier;
  arm.offered_qps = offered_qps;
  const double interval_us = 1e6 / offered_qps;
  std::vector<std::future<serve::ServeResult>> accepted;
  accepted.reserve(static_cast<size_t>(offered_qps * seconds) + 16);
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration<double>(seconds);
  double next_due_us = 0;
  size_t i = 0;
  while (Clock::now() < end) {
    const double now_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    if (now_us < next_due_us) {
      // Spin for sub-100us gaps, sleep for the rest: at 16x overload the
      // inter-arrival time is far below scheduler granularity.
      if (next_due_us - now_us > 100.0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<int64_t>(
                next_due_us - now_us - 50.0)));
      }
      continue;
    }
    next_due_us += interval_us;
    std::future<serve::ServeResult> future;
    if (service->Submit(MakeAssignRequest(s, i++), &future) ==
        serve::Admit::kOk) {
      accepted.push_back(std::move(future));
    } else {
      ++arm.shed;
    }
  }
  std::vector<double> latencies;
  latencies.reserve(accepted.size());
  for (auto& future : accepted) {
    const serve::ServeResult result = future.get();
    if (result.status == 200) latencies.push_back(result.latency_ms);
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  arm.accepted = accepted.size();
  arm.served_qps = static_cast<double>(latencies.size()) / elapsed_s;
  const uint64_t offered_total = arm.accepted + arm.shed;
  arm.shed_rate = offered_total == 0
                      ? 0.0
                      : static_cast<double>(arm.shed) /
                            static_cast<double>(offered_total);
  arm.p99_ms = Percentile99(&latencies);
  return arm;
}

int RunServeReport(const std::string& path) {
  ServeBenchState& s = GetServeBenchState();
  serve::ServeOptions opts;
  opts.default_deadline_ms = 10000;
  serve::ServeService service(s.context.get(), opts);
  while (!service.ready()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Calibrate sustainable QPS: 4 closed-loop workers (submit, wait,
  // repeat) for one second. Closed-loop never sheds, so this measures the
  // service rate itself.
  std::atomic<uint64_t> completed{0};
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        size_t i = static_cast<size_t>(w) * 1000;
        while (!stop.load(std::memory_order_relaxed)) {
          std::future<serve::ServeResult> future;
          if (service.Submit(MakeAssignRequest(s, i++), &future) !=
              serve::Admit::kOk) {
            std::this_thread::yield();
            continue;
          }
          if (future.get().status == 200) {
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(1));
    stop.store(true);
    for (auto& t : workers) t.join();
  }
  const double sustained_qps = static_cast<double>(completed.load());
  if (sustained_qps < 1.0) {
    std::fprintf(stderr, "serve bench: calibration produced no traffic\n");
    return 1;
  }

  // Overload replay: offer 1x/4x/16x of the sustained rate open-loop.
  std::vector<ServeArmResult> arms;
  for (const int multiplier : {1, 4, 16}) {
    arms.push_back(RunServeArm(s, &service, multiplier,
                               sustained_qps * multiplier,
                               /*seconds=*/1.5));
  }

  service.Drain();
  const serve::ServeStats stats = service.stats();
  const bool drain_all_answered = stats.dropped_in_flight() == 0;

  // The robustness claim: accepted-request p99 under 16x overload is
  // bounded by queue depth over drain rate, not by offered load. The
  // full-queue drain time is the floor for p99 comparisons when the 1x
  // p99 is microscopic.
  const double full_queue_ms =
      static_cast<double>(opts.max_queue) / sustained_qps * 1000.0;
  const double p99_1x = arms[0].p99_ms;
  const double p99_16x = arms[2].p99_ms;
  const double p99_bound_ms = 2.0 * std::max(p99_1x, full_queue_ms);
  const bool p99_bounded = p99_16x <= p99_bound_ms;

  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.serve.v1");
  root.Set(
      "note",
      "Overload replay of the serving plane: sustainable QPS calibrated "
      "closed-loop, then 1x/4x/16x offered open-loop. p99_bounded requires "
      "the accepted-request p99 at 16x to stay within 2x of "
      "max(p99 at 1x, full-queue drain time): admission control must bound "
      "latency by queue depth, not offered load. drain_all_answered "
      "requires Drain() to answer every accepted request.");
  root.Set("sustained_qps", sustained_qps);
  root.Set("max_queue", opts.max_queue);
  root.Set("max_batch", opts.max_batch);
  root.Set("full_queue_drain_ms", full_queue_ms);
  obs::Json arm_list = obs::Json::Array();
  for (const ServeArmResult& arm : arms) {
    obs::Json entry = obs::Json::Object();
    entry.Set("load_multiplier", arm.multiplier);
    entry.Set("offered_qps", arm.offered_qps);
    entry.Set("served_qps", arm.served_qps);
    entry.Set("accepted", arm.accepted);
    entry.Set("shed", arm.shed);
    entry.Set("shed_rate", arm.shed_rate);
    entry.Set("p99_ms", arm.p99_ms);
    arm_list.Append(std::move(entry));
  }
  root.Set("arms", std::move(arm_list));
  root.Set("p99_bound_ms", p99_bound_ms);
  root.Set("p99_bounded", p99_bounded);
  root.Set("drain_all_answered", drain_all_answered);

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  if (!out.good()) return 1;

  // Companion JSONL: one telemetry-shaped sample per headline number so
  // `e2dtc_report --compare` can gate serve regressions (qps series
  // improve upward, p99/shed downward).
  std::ofstream series(path + ".series.jsonl");
  if (series) {
    auto sample = [&](const std::string& name, double value) {
      obs::Json line = obs::Json::Object();
      line.Set("type", "sample");
      line.Set("series", name);
      line.Set("step", 0);
      line.Set("value", value);
      series << line.Dump() << "\n";
    };
    sample("serve.sustained_qps", sustained_qps);
    for (const ServeArmResult& arm : arms) {
      const std::string suffix =
          std::to_string(arm.multiplier) + "x";
      sample("serve.served_qps_" + suffix, arm.served_qps);
      sample("serve.p99_ms_" + suffix, arm.p99_ms);
      sample("serve.shed_rate_" + suffix, arm.shed_rate);
    }
  }

  std::printf(
      "serve overload replay: sustained %.0f qps; 16x arm served %.0f qps, "
      "shed %.0f%%, p99 %.2f ms (bound %.2f ms) -> %s, drain %s\n",
      sustained_qps, arms[2].served_qps, arms[2].shed_rate * 100.0,
      p99_16x, p99_bound_ms, p99_bounded ? "bounded" : "UNBOUNDED",
      drain_all_answered ? "answered all accepted" : "DROPPED REQUESTS");
  return p99_bounded && drain_all_answered ? 0 : 1;
}

// --- ANN index: recall-vs-exact sweep + assignment agreement --------------

/// Embedding-shaped synthetic corpus: a mixture of `centers` Gaussians in
/// [-10, 10]^dim. Trained trajectory embeddings are clustered, not
/// uniform — this is the regime the index is built for and the one the
/// acceptance numbers are quoted in.
e2dtc::nn::Tensor AnnMixture(int n, int dim, int centers, double jitter,
                             uint64_t seed) {
  e2dtc::Rng rng(seed);
  e2dtc::nn::Tensor center_mat(centers, dim);
  for (int c = 0; c < centers; ++c) {
    for (int d = 0; d < dim; ++d) {
      center_mat.at(c, d) = static_cast<float>(rng.Uniform(-10.0, 10.0));
    }
  }
  e2dtc::nn::Tensor points(n, dim);
  for (int i = 0; i < n; ++i) {
    const int c =
        static_cast<int>(rng.UniformU64(static_cast<uint64_t>(centers)));
    for (int d = 0; d < dim; ++d) {
      points.at(i, d) = center_mat.at(c, d) +
                        static_cast<float>(rng.Gaussian(0.0, jitter));
    }
  }
  return points;
}

/// Exact top-k over the full corpus via a bounded max-heap: the O(n) scan
/// the index is benchmarked against (same candidate arithmetic as the
/// tree's leaf scan, so the comparison is index-structure vs index-free).
std::vector<e2dtc::ann::Neighbor> AnnExactTopK(
    const e2dtc::nn::Tensor& corpus, const float* query, int k) {
  using e2dtc::ann::Neighbor;
  auto worse = [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::vector<Neighbor> heap;
  heap.reserve(static_cast<size_t>(k) + 1);
  for (int i = 0; i < corpus.rows(); ++i) {
    const double d2 = e2dtc::nn::kernels::SquaredDistance(
        query, corpus.row(i), corpus.cols());
    const Neighbor candidate{i, d2};
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  for (auto& neighbor : heap) neighbor.distance = std::sqrt(neighbor.distance);
  return heap;
}

int RunAnnReport(const std::string& path) {
  using e2dtc::ann::Neighbor;
  constexpr int kN = 100000;
  constexpr int kDim = 32;
  constexpr int kCenters = 1024;
  constexpr int kQueries = 200;
  constexpr int kTopK = 64;

  std::printf("ann bench: building %d x %d corpus...\n", kN, kDim);
  const e2dtc::nn::Tensor all =
      AnnMixture(kN + kQueries, kDim, kCenters, 0.6, 2024);
  const e2dtc::nn::Tensor corpus = all.SliceRows(0, kN);
  const e2dtc::nn::Tensor queries = all.SliceRows(kN, kQueries);
  std::vector<int64_t> ids(kN);
  for (int i = 0; i < kN; ++i) ids[static_cast<size_t>(i)] = i;

  e2dtc::ann::VocabTreeOptions tree_opts;
  tree_opts.branching = 8;
  tree_opts.max_leaf_size = 64;
  const auto build_start = std::chrono::steady_clock::now();
  auto tree = e2dtc::ann::VocabTree::Build(corpus, ids, tree_opts);
  if (!tree.ok()) {
    std::fprintf(stderr, "ann bench: build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  const double build_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - build_start)
                             .count();
  std::printf("ann bench: tree built in %.2fs (%d leaves, depth %d)\n",
              build_s, (*tree)->num_leaves(), (*tree)->depth());

  // Exact baseline: ground truth for recall and the timing denominator.
  std::vector<std::vector<Neighbor>> exact(kQueries);
  const double exact_s = MinSeconds(2, [&] {
    for (int q = 0; q < kQueries; ++q) {
      exact[static_cast<size_t>(q)] =
          AnnExactTopK(corpus, queries.row(q), kTopK);
    }
  });
  const double exact_us_per_query = exact_s / kQueries * 1e6;

  obs::Json sweep = obs::Json::Array();
  double headline_speedup = 0.0;
  double headline_recall10 = 0.0;
  int headline_probes = 0;
  for (const int probes : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::vector<Neighbor>> approx(kQueries);
    int64_t leaves = 0, scanned = 0;
    const double ann_s = MinSeconds(3, [&] {
      leaves = scanned = 0;
      for (int q = 0; q < kQueries; ++q) {
        e2dtc::ann::SearchStats stats;
        approx[static_cast<size_t>(q)] =
            (*tree)->TopK(queries.row(q), kTopK, probes, &stats);
        leaves += stats.leaves_probed;
        scanned += stats.candidates_scanned;
      }
    });
    const double ann_us_per_query = ann_s / kQueries * 1e6;

    // recall@k: fraction of the exact top-k ids the probe-limited search
    // returned, averaged over queries.
    double recall[3] = {0.0, 0.0, 0.0};
    const int ks[3] = {1, 10, kTopK};
    for (int q = 0; q < kQueries; ++q) {
      const auto& got = approx[static_cast<size_t>(q)];
      const auto& want = exact[static_cast<size_t>(q)];
      for (int which = 0; which < 3; ++which) {
        const int k = ks[which];
        std::set<int64_t> got_ids;
        for (int i = 0; i < k && i < static_cast<int>(got.size()); ++i) {
          got_ids.insert(got[static_cast<size_t>(i)].id);
        }
        int hit = 0;
        for (int i = 0; i < k && i < static_cast<int>(want.size()); ++i) {
          if (got_ids.count(want[static_cast<size_t>(i)].id) > 0) ++hit;
        }
        recall[which] += static_cast<double>(hit) / ks[which];
      }
    }
    for (double& r : recall) r /= kQueries;
    const double speedup = exact_us_per_query / ann_us_per_query;

    obs::Json entry = obs::Json::Object();
    entry.Set("probes", probes);
    entry.Set("recall_at_1", recall[0]);
    entry.Set("recall_at_10", recall[1]);
    entry.Set("recall_at_64", recall[2]);
    entry.Set("us_per_query", ann_us_per_query);
    entry.Set("speedup_vs_exact", speedup);
    entry.Set("avg_leaves_probed",
              static_cast<double>(leaves) / kQueries);
    entry.Set("avg_candidates_scanned",
              static_cast<double>(scanned) / kQueries);
    sweep.Append(std::move(entry));
    std::printf(
        "ann bench: probes=%2d recall@1 %.3f recall@10 %.3f recall@64 %.3f "
        "%.1f us/query (%.1fx vs exact %.1f us)\n",
        probes, recall[0], recall[1], recall[2], ann_us_per_query, speedup,
        exact_us_per_query);
    // Headline: the fastest setting that clears the recall bar.
    if (recall[1] >= 0.95 && speedup > headline_speedup) {
      headline_speedup = speedup;
      headline_recall10 = recall[1];
      headline_probes = probes;
    }
  }

  // Approximate assignment agreement at serving-realistic k: queries
  // jittered around the centroids, agreement scored against the exact
  // Student-t argmax, disagreements logged with the confidence that let
  // them through.
  constexpr int kAssignK = 256;
  constexpr int kAssignQueries = 2000;
  const e2dtc::nn::Tensor centroids =
      AnnMixture(kAssignK, kDim, kAssignK, 0.0, 77);
  // Pre-compute the held-out batch and its exact assignments once; every
  // confidence arm is scored against the same oracle.
  e2dtc::Rng assign_rng(99);
  e2dtc::nn::Tensor assign_queries(kAssignQueries, kDim);
  std::vector<int> exact_clusters(kAssignQueries);
  for (int q = 0; q < kAssignQueries; ++q) {
    const int c = static_cast<int>(
        assign_rng.UniformU64(static_cast<uint64_t>(kAssignK)));
    for (int d = 0; d < kDim; ++d) {
      assign_queries.at(q, d) =
          centroids.at(c, d) +
          static_cast<float>(assign_rng.Gaussian(0.0, 0.5));
    }
    int exact_cluster = 0;
    double best = e2dtc::nn::kernels::SquaredDistance(
        assign_queries.row(q), centroids.row(0), kDim);
    for (int j = 1; j < kAssignK; ++j) {
      const double d2 = e2dtc::nn::kernels::SquaredDistance(
          assign_queries.row(q), centroids.row(j), kDim);
      if (d2 < best) {
        best = d2;
        exact_cluster = j;
      }
    }
    exact_clusters[static_cast<size_t>(q)] = exact_cluster;
  }

  // Student-t kernels are heavy-tailed, so even a perfect probe rarely
  // captures 98% of the total mass at k=256 — high thresholds degrade
  // gracefully into the exact path (fallback_rate -> 1) rather than
  // returning overconfident answers. Sweep the threshold so the
  // agreement-vs-fallback trade is measured, not asserted.
  obs::Json assign_arms = obs::Json::Array();
  double headline_agreement = 0.0;
  double headline_fallback = 1.0;
  obs::Json disagreements = obs::Json::Array();
  for (const double min_confidence : {0.98, 0.5, 0.25}) {
    e2dtc::ann::SoftAssignOptions assign_opts;
    assign_opts.probes = 8;
    assign_opts.min_confidence = min_confidence;
    assign_opts.tree.branching = 8;
    assign_opts.tree.max_leaf_size = 8;
    auto assigner =
        e2dtc::ann::ApproxAssigner::Build(centroids, assign_opts);
    if (!assigner.ok()) {
      std::fprintf(stderr, "ann bench: assigner build failed: %s\n",
                   assigner.status().ToString().c_str());
      return 1;
    }
    int agree = 0, fallbacks = 0;
    for (int q = 0; q < kAssignQueries; ++q) {
      const e2dtc::ann::AssignOutcome outcome =
          (*assigner)->AssignOne(assign_queries.row(q));
      if (outcome.exact_fallback) ++fallbacks;
      if (outcome.cluster == exact_clusters[static_cast<size_t>(q)]) {
        ++agree;
      } else if (disagreements.size() < 20) {
        obs::Json d = obs::Json::Object();
        d.Set("min_confidence", min_confidence);
        d.Set("query", q);
        d.Set("approx", outcome.cluster);
        d.Set("exact", exact_clusters[static_cast<size_t>(q)]);
        d.Set("confidence", outcome.confidence);
        disagreements.Append(std::move(d));
      }
    }
    const double agreement = static_cast<double>(agree) / kAssignQueries;
    const double fallback_rate =
        static_cast<double>(fallbacks) / kAssignQueries;
    obs::Json arm = obs::Json::Object();
    arm.Set("min_confidence", min_confidence);
    arm.Set("agreement", agreement);
    arm.Set("fallback_rate", fallback_rate);
    assign_arms.Append(std::move(arm));
    std::printf(
        "ann bench: assign min_confidence=%.2f agreement %.4f "
        "fallback %.3f\n",
        min_confidence, agreement, fallback_rate);
    // Headline: the arm that answers the most queries approximately while
    // clearing the agreement bar.
    if (agreement >= 0.99 && fallback_rate < headline_fallback) {
      headline_agreement = agreement;
      headline_fallback = fallback_rate;
    }
  }

  const bool retrieval_pass =
      headline_probes > 0 && headline_speedup >= 10.0;
  const bool assign_pass = headline_agreement >= 0.99;

  obs::Json root = obs::Json::Object();
  root.Set("schema", "e2dtc.bench.ann.v1");
  root.Set(
      "note",
      "Hierarchical-k-means (vocab-tree) index vs the exact O(n) scan over "
      "a clustered synthetic embedding corpus. The sweep varies probe "
      "width; recall@k is scored against exact top-64 lists on held-out "
      "queries. headline picks the fastest probe setting with recall@10 >= "
      "0.95 and requires >= 10x speedup. assignment scores the "
      "confidence-gated approximate Student-t argmax against the exact one "
      "at k=256 across a sweep of min_confidence thresholds (the heavy "
      "Student-t tail caps probed mass well below 1 at large k, so high "
      "thresholds degrade into the exact path rather than guessing); "
      "disagreements are listed with the confidence that let them through "
      "(capped at 20).");
  obs::Json corpus_json = obs::Json::Object();
  corpus_json.Set("n", kN);
  corpus_json.Set("dim", kDim);
  corpus_json.Set("mixture_centers", kCenters);
  corpus_json.Set("queries", kQueries);
  root.Set("corpus", std::move(corpus_json));
  obs::Json tree_json = obs::Json::Object();
  tree_json.Set("branching", tree_opts.branching);
  tree_json.Set("max_leaf_size", tree_opts.max_leaf_size);
  tree_json.Set("leaves", (*tree)->num_leaves());
  tree_json.Set("depth", (*tree)->depth());
  tree_json.Set("build_seconds", build_s);
  root.Set("tree", std::move(tree_json));
  root.Set("exact_us_per_query", exact_us_per_query);
  root.Set("sweep", std::move(sweep));
  obs::Json headline = obs::Json::Object();
  headline.Set("probes", headline_probes);
  headline.Set("recall_at_10", headline_recall10);
  headline.Set("speedup_vs_exact", headline_speedup);
  root.Set("headline", std::move(headline));
  obs::Json assignment = obs::Json::Object();
  assignment.Set("k", kAssignK);
  assignment.Set("queries", kAssignQueries);
  assignment.Set("probes", 8);
  assignment.Set("arms", std::move(assign_arms));
  obs::Json assign_headline = obs::Json::Object();
  assign_headline.Set("agreement", headline_agreement);
  assign_headline.Set("fallback_rate", headline_fallback);
  assignment.Set("headline", std::move(assign_headline));
  assignment.Set("disagreements", std::move(disagreements));
  root.Set("assignment", std::move(assignment));
  root.Set("retrieval_pass", retrieval_pass);
  root.Set("assignment_pass", assign_pass);

  std::ofstream out(path);
  if (!out) return 1;
  out << root.Dump() << "\n";
  if (!out.good()) return 1;

  std::printf(
      "ann bench: headline probes=%d recall@10 %.3f speedup %.1fx -> %s; "
      "assignment agreement %.4f (fallback %.3f) -> %s\n",
      headline_probes, headline_recall10, headline_speedup,
      retrieval_pass ? "pass" : "FAIL", headline_agreement,
      headline_fallback, assign_pass ? "pass" : "FAIL");
  return retrieval_pass && assign_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ApplyThreadFlags(argc, argv);
  std::string gemm_json;
  std::string distance_json;
  std::string telemetry_json;
  std::string obs_http_json;
  std::string serve_json;
  std::string ann_json;
  std::string autotune_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr std::string_view kGemmFlag = "--gemm_json=";
    constexpr std::string_view kDistanceFlag = "--distance_json=";
    constexpr std::string_view kTelemetryFlag = "--telemetry_overhead=";
    constexpr std::string_view kObsHttpFlag = "--obs_http_json=";
    constexpr std::string_view kServeFlag = "--serve_json=";
    std::string_view arg = argv[i];
    if (arg.substr(0, kGemmFlag.size()) == kGemmFlag) {
      gemm_json = std::string(arg.substr(kGemmFlag.size()));
      continue;
    }
    if (arg.substr(0, kDistanceFlag.size()) == kDistanceFlag) {
      distance_json = std::string(arg.substr(kDistanceFlag.size()));
      continue;
    }
    if (arg.substr(0, kTelemetryFlag.size()) == kTelemetryFlag) {
      telemetry_json = std::string(arg.substr(kTelemetryFlag.size()));
      continue;
    }
    if (arg.substr(0, kObsHttpFlag.size()) == kObsHttpFlag) {
      obs_http_json = std::string(arg.substr(kObsHttpFlag.size()));
      continue;
    }
    if (arg.substr(0, kServeFlag.size()) == kServeFlag) {
      serve_json = std::string(arg.substr(kServeFlag.size()));
      continue;
    }
    constexpr std::string_view kAnnFlag = "--ann_json=";
    if (arg.substr(0, kAnnFlag.size()) == kAnnFlag) {
      ann_json = std::string(arg.substr(kAnnFlag.size()));
      continue;
    }
    constexpr std::string_view kAutotuneFlag = "--autotune_json=";
    if (arg.substr(0, kAutotuneFlag.size()) == kAutotuneFlag) {
      autotune_json = std::string(arg.substr(kAutotuneFlag.size()));
      continue;
    }
    // --distance-threads / --kernel-threads were consumed above; strip them
    // (and their values) so google-benchmark's strict parser never sees them.
    if (arg == "--distance-threads" || arg == "--kernel-threads") {
      if (i + 1 < argc) ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!gemm_json.empty()) return RunGemmReport(gemm_json);
  if (!distance_json.empty()) return RunDistanceReport(distance_json);
  if (!telemetry_json.empty()) {
    return RunTelemetryOverheadReport(telemetry_json);
  }
  if (!obs_http_json.empty()) return RunObsHttpScrapeReport(obs_http_json);
  if (!serve_json.empty()) return RunServeReport(serve_json);
  if (!ann_json.empty()) return RunAnnReport(ann_json);
  if (!autotune_json.empty()) return RunAutotuneReport(autotune_json);
  RegisterGemmBenchmarks();
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
