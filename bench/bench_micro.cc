// Engineering micro-benchmarks (google-benchmark): the building blocks the
// experiment harnesses lean on. Not a paper table — used to track kernel
// regressions.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/hausdorff.h"
#include "distance/sspd.h"
#include "distance/lcss.h"
#include "embedding/skipgram.h"
#include "geo/simplify.h"
#include "metrics/hungarian.h"
#include "nn/linalg.h"
#include "nn/gru.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace e2dtc;

distance::Polyline RandomLine(Rng* rng, int n) {
  distance::Polyline line;
  line.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    line.push_back(geo::XY{rng->Uniform(0, 5000), rng->Uniform(0, 5000)});
  }
  return line;
}

void BM_Dtw(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DtwDistance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Dtw)->Range(16, 256)->Complexity(benchmark::oNSquared);

void BM_Edr(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::EdrDistance(a, b, 200.0));
  }
}
BENCHMARK(BM_Edr)->Range(16, 256);

void BM_Lcss(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::LcssDistance(a, b, 200.0));
  }
}
BENCHMARK(BM_Lcss)->Range(16, 256);

void BM_Hausdorff(benchmark::State& state) {
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::HausdorffDistance(a, b));
  }
}
BENCHMARK(BM_Hausdorff)->Range(16, 256);

void BM_Erp(benchmark::State& state) {
  Rng rng(21);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::ErpDistance(a, b));
  }
}
BENCHMARK(BM_Erp)->Range(16, 256);

void BM_Sspd(benchmark::State& state) {
  Rng rng(22);
  const int n = static_cast<int>(state.range(0));
  auto a = RandomLine(&rng, n);
  auto b = RandomLine(&rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::SspdDistance(a, b));
  }
}
BENCHMARK(BM_Sspd)->Range(16, 256);

void BM_DtwOnSimplified(benchmark::State& state) {
  // Douglas-Peucker preprocessing makes the O(L^2) metrics cheap: this
  // measures DTW cost after simplifying 256-point lines at 50 m tolerance.
  Rng rng(23);
  auto make = [&rng] {
    distance::Polyline line;
    double x = 0.0;
    for (int i = 0; i < 256; ++i) {
      line.push_back(geo::XY{x, rng.Gaussian(0.0, 20.0)});
      x += 30.0;
    }
    return line;
  };
  auto a_full = make();
  auto b_full = make();
  auto simplify = [](const distance::Polyline& line) {
    std::vector<int> keep = geo::DouglasPeuckerIndices(line, 50.0);
    distance::Polyline out;
    for (int i : keep) out.push_back(line[static_cast<size_t>(i)]);
    return out;
  };
  auto a = simplify(a_full);
  auto b = simplify(b_full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DtwDistance(a, b));
  }
  state.counters["kept_points"] = static_cast<double>(a.size());
}
BENCHMARK(BM_DtwOnSimplified);

void BM_SymmetricEigen(benchmark::State& state) {
  Rng rng(24);
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const float v = static_cast<float>(rng.Gaussian());
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SymmetricEigen(a)->values);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(64);

void BM_Matmul(benchmark::State& state) {
  Rng rng(5);
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a = nn::Tensor::Gaussian(n, n, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::Gaussian(n, n, 1.0f, &rng);
  nn::Tensor c;
  for (auto _ : state) {
    c.Matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Matmul)->Range(16, 128);

void BM_GruStepForwardBackward(benchmark::State& state) {
  Rng rng(6);
  const int batch = 32;
  const int hidden = static_cast<int>(state.range(0));
  nn::GruCell cell(hidden, hidden, &rng);
  nn::Tensor x_val = nn::Tensor::Gaussian(batch, hidden, 1.0f, &rng);
  nn::Tensor h_val = nn::Tensor::Gaussian(batch, hidden, 0.3f, &rng);
  for (auto _ : state) {
    nn::Var x = nn::Var::Leaf(x_val, true);
    nn::Var h = nn::Var::Constant(h_val);
    nn::Var out = nn::Sum(nn::Square(cell.Forward(x, h)));
    nn::Backward(out);
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_GruStepForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_KnnProximityLoss(benchmark::State& state) {
  Rng rng(7);
  const int n = 64, k = 16, vocab = 2000, hidden = 64;
  nn::KnnCandidates cand;
  cand.k = k;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      cand.indices.push_back(
          static_cast<int>(rng.UniformU64(vocab)));
      cand.weights.push_back(c == 0 ? 0.7f : 0.3f / (k - 1));
    }
  }
  nn::Tensor h_val = nn::Tensor::Gaussian(n, hidden, 1.0f, &rng);
  nn::Var w = nn::Var::Leaf(nn::Tensor::Gaussian(vocab, hidden, 0.1f, &rng),
                            true);
  nn::Var b = nn::Var::Leaf(nn::Tensor(vocab, 1), true);
  for (auto _ : state) {
    nn::Var h = nn::Var::Leaf(h_val, true);
    nn::Var loss = nn::KnnProximityLoss(h, w, b, cand);
    nn::Backward(loss);
    w.node()->ZeroGrad();
    b.node()->ZeroGrad();
    benchmark::DoNotOptimize(loss.value().scalar());
  }
}
BENCHMARK(BM_KnnProximityLoss);

void BM_KMeansIteration(benchmark::State& state) {
  Rng rng(8);
  const int n = static_cast<int>(state.range(0));
  cluster::FeatureMatrix pts;
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(32);
    for (auto& v : p) v = static_cast<float>(rng.Gaussian());
    pts.push_back(std::move(p));
  }
  cluster::KMeansOptions opts;
  opts.k = 8;
  opts.max_iters = 5;
  opts.num_init = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::KMeans(pts, opts)->inertia);
  }
}
BENCHMARK(BM_KMeansIteration)->Range(128, 1024);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(9);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::SolveAssignment(cost)->total_cost);
  }
}
BENCHMARK(BM_Hungarian)->Range(8, 64);

void BM_SkipGramEpoch(benchmark::State& state) {
  Rng rng(10);
  std::vector<std::vector<int>> corpus;
  for (int s = 0; s < 100; ++s) {
    std::vector<int> seq;
    for (int t = 0; t < 30; ++t) {
      seq.push_back(4 + static_cast<int>(rng.UniformU64(500)));
    }
    corpus.push_back(std::move(seq));
  }
  embedding::SkipGramConfig cfg;
  cfg.dim = 32;
  cfg.epochs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embedding::TrainSkipGram(corpus, 504, cfg)->data());
  }
}
BENCHMARK(BM_SkipGramEpoch);

// --- obs overhead --------------------------------------------------------
// The disabled variants are the numbers that matter: instrumentation sits
// on training hot paths and must cost a single relaxed atomic load when no
// sink is attached (<2% of any real batch).

void BM_CounterIncrementDisabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(false);
  obs::Counter counter =
      obs::Registry::Global().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_CounterIncrementEnabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::Counter counter =
      obs::Registry::Global().counter("bench.micro.counter");
  for (auto _ : state) {
    counter.Increment();
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_CounterIncrementEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(false);
  obs::Histogram hist = obs::Registry::Global().histogram(
      "bench.micro.hist", obs::ExponentialBuckets(1.0, 2.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v += 0.5;
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  const bool was = obs::MetricsEnabled();
  obs::EnableMetrics(true);
  obs::Histogram hist = obs::Registry::Global().histogram(
      "bench.micro.hist", obs::ExponentialBuckets(1.0, 2.0, 12));
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v += 0.5;
  }
  obs::EnableMetrics(was);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // Tracing off (the default): a span is one relaxed load + no clock reads.
  for (auto _ : state) {
    E2DTC_TRACE_SPAN("bench.micro.span");
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::StartTracing();
  for (auto _ : state) {
    E2DTC_TRACE_SPAN("bench.micro.span");
  }
  obs::StopTracing();
}
BENCHMARK(BM_TraceSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
