// Reproduces Fig. 4: t-SNE visualization of the representation spaces on a
// Hangzhou sample — four classic similarity metrics (DTW, Hausdorff, EDR,
// LCSS; affinities fed to t-SNE directly) and four deep representations
// (t2vec/L0, L1, L2). For each panel we emit the 2-D coordinates plus a
// quantitative separation statistic (mean silhouette of the ground-truth
// labels in the 2-D space), since "how separated the clusters look" is the
// figure's message. Paper's shape: L2 (full E2DTC) most separated,
// classic metrics least.
#include <cstdio>

#include "bench/common.h"
#include "data/subsets.h"
#include "metrics/silhouette.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "viz/svg.h"
#include "viz/tsne.h"

namespace {

using namespace e2dtc;

double PanelSilhouette(const viz::TsneResult& tsne,
                       const std::vector<int>& labels) {
  std::vector<std::vector<float>> pts;
  pts.reserve(tsne.points.size());
  for (const auto& p : tsne.points) {
    pts.push_back({static_cast<float>(p[0]), static_cast<float>(p[1])});
  }
  return metrics::SilhouetteScore(pts, labels).ValueOr(0.0);
}

void EmitPanel(const std::string& panel, const viz::TsneResult& tsne,
               const std::vector<int>& labels, CsvWriter* csv) {
  const double sil = PanelSilhouette(tsne, labels);
  std::printf("  %-12s silhouette(2-D, true labels) = %+.3f\n",
              panel.c_str(), sil);
  viz::ScatterOptions svg_opts;
  svg_opts.title = "Fig.4 " + panel;
  (void)viz::WriteScatterSvg(bench::ResultsDir() + "/fig4_" + panel + ".svg",
                             tsne.points, labels, svg_opts);
  for (size_t i = 0; i < tsne.points.size(); ++i) {
    (void)csv->WriteRow({panel, StrFormat("%zu", i),
                         StrFormat("%.4f", tsne.points[i][0]),
                         StrFormat("%.4f", tsne.points[i][1]),
                         StrFormat("%d", labels[i])});
  }
}

}  // namespace

int main() {
  using namespace e2dtc;
  std::printf("=== Fig. 4: t-SNE of representation spaces (Hangzhou) ===\n");

  // Paper uses 1000 Hangzhou samples; scaled to keep exact t-SNE fast.
  data::Dataset full = bench::BuildPreset(bench::PresetId::kHangzhou, 1.0,
                                          42);
  const int sample_n = std::min(300, full.size());
  data::Dataset ds = data::RandomSubset(full, sample_n, 5).value();
  const std::vector<int> labels = data::Labels(ds);
  const std::vector<distance::Polyline> lines = bench::ProjectAll(ds);

  viz::TsneConfig tsne_cfg;
  tsne_cfg.perplexity = 25.0;
  tsne_cfg.max_iters = 300;

  CsvWriter csv(bench::ResultsDir() + "/fig4_tsne.csv");
  (void)csv.WriteRow({"panel", "index", "x", "y", "label"});

  // Panels (a)-(d): classic metric spaces.
  for (distance::Metric m :
       {distance::Metric::kDtw, distance::Metric::kHausdorff,
        distance::Metric::kEdr, distance::Metric::kLcss}) {
    distance::MetricParams params;
    params.epsilon_meters = 200.0;
    distance::DistanceMatrix matrix =
        distance::ComputeDistanceMatrix(lines, m, params);
    // Normalize so perplexity search behaves across metric scales.
    double mx = 1e-12;
    for (double d : matrix.data()) mx = std::max(mx, d);
    std::vector<double> normalized = matrix.data();
    for (double& d : normalized) d /= mx;
    auto tsne = viz::RunTsneFromDistances(normalized, ds.size(), tsne_cfg);
    EmitPanel(distance::MetricName(m), tsne.value(), labels, &csv);
  }

  // Panels (e)-(h): deep representation spaces (t2vec == L0, then L1, L2).
  const core::LossMode modes[] = {core::LossMode::kL0, core::LossMode::kL1,
                                  core::LossMode::kL2};
  const char* names[] = {"t2vec(L0)", "L1", "L2(E2DTC)"};
  for (int m = 0; m < 3; ++m) {
    // Train on the full preset; visualize the held sample's embeddings.
    bench::DeepScores deep = bench::RunDeepMethods(
        full, bench::BenchConfigFor(bench::PresetId::kHangzhou, modes[m]));
    nn::Tensor emb = deep.pipeline->Embed(ds.trajectories);
    auto tsne = viz::RunTsne(core::TensorRows(emb), tsne_cfg);
    EmitPanel(names[m], tsne.value(), labels, &csv);
  }
  (void)csv.Close();
  std::printf("\nExpected shape (paper Fig. 4): deep panels more separated "
              "than classic; L2 tightest and most separated.\n");
  return 0;
}
