#ifndef E2DTC_BENCH_COMMON_H_
#define E2DTC_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/e2dtc.h"
#include "data/dataset.h"
#include "distance/matrix.h"
#include "metrics/clustering_metrics.h"

/// Shared harness for the table/figure reproduction benches. Every bench is
/// a plain executable that prints paper-shaped rows to stdout and mirrors
/// them as CSV under ./bench_results/.
namespace e2dtc::bench {

/// Parses --distance-threads N and --kernel-threads N from a bench's argv
/// and applies them (distance::SetNumThreads / nn::kernels::SetNumThreads).
/// Both engines guarantee bitwise-identical results at any thread count, so
/// these only move wall clock. Unknown flags are ignored.
void ApplyThreadFlags(int argc, char** argv);

/// The paper's three datasets, reproduced via the synthetic-city presets +
/// Algorithm 2 ground truth (DESIGN.md section 2).
enum class PresetId { kGeoLife, kPorto, kHangzhou };

std::string PresetName(PresetId id);

/// Builds a preset dataset at `scale` of the bench-default population and
/// relabels it with Algorithm 2 (sigma 0.6, lambda 0.7, paper defaults).
data::Dataset BuildPreset(PresetId id, double scale, uint64_t seed);

/// Projects every trajectory into planar meters for the classic metrics.
std::vector<distance::Polyline> ProjectAll(const data::Dataset& dataset);

/// One method's scores on one dataset.
struct MethodScore {
  std::string method;
  metrics::ClusteringQuality quality;
  double seconds = 0.0;  ///< End-to-end clustering time.
};

/// Classic baseline: <metric> + K-Medoids. For the threshold metrics (EDR,
/// LCSS) the epsilon grid is searched and the best UACC reported, mirroring
/// the paper's grid-search protocol. `runs` repetitions are averaged.
MethodScore RunClassicKMedoids(const data::Dataset& dataset,
                               distance::Metric metric, int runs,
                               uint64_t seed);

/// Deep methods: one pipeline fit yields both the t2vec + k-means baseline
/// (the L0 configuration) and the full E2DTC result.
struct DeepScores {
  MethodScore t2vec;
  MethodScore e2dtc;
  std::unique_ptr<core::E2dtcPipeline> pipeline;
};

/// Bench-default training configuration scaled for single-core CPU runs.
core::E2dtcConfig BenchConfig(core::LossMode mode = core::LossMode::kL2);

/// Per-dataset tuned configuration (the paper likewise tunes training
/// hyper-parameters per dataset and reports the best run): sparser corpora
/// get more skip-gram and pre-training epochs.
core::E2dtcConfig BenchConfigFor(PresetId id,
                                 core::LossMode mode = core::LossMode::kL2);

DeepScores RunDeepMethods(const data::Dataset& dataset,
                          const core::E2dtcConfig& config);

/// Output directory for CSV mirrors (created on first use).
std::string ResultsDir();

/// Prints a metrics row: "<method>  UACC  NMI  RI  (time s)".
void PrintScoreRow(const MethodScore& score);

/// Writes rows of (method, uacc, nmi, ri, seconds) for one dataset, plus a
/// sibling `<stem>.metrics.json` obs-metrics snapshot so every bench result
/// carries its counter/histogram context (batches, k-means iterations,
/// queue waits, ...). Metrics collection is enabled for the whole bench
/// process as a side effect of linking this harness.
void WriteScoresCsv(const std::string& filename, const std::string& dataset,
                    const std::vector<MethodScore>& scores);

/// Writes the current global metrics snapshot as JSON under ResultsDir().
void WriteMetricsSnapshotJson(const std::string& filename);

}  // namespace e2dtc::bench

#endif  // E2DTC_BENCH_COMMON_H_
