// Reproduces Table IV: E2DTC performance under the three loss
// configurations. L0 = pre-training only (Eq. 8) + k-means; L1 = + KL
// clustering loss (Eq. 12); L2 = + triplet loss (Eq. 14, the full model).
// Paper's shape: L2 >= L1 >= L0 on every dataset and metric family.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Table IV: E2DTC performance vs. loss functions ===\n");

  for (bench::PresetId id : {bench::PresetId::kGeoLife,
                             bench::PresetId::kPorto,
                             bench::PresetId::kHangzhou}) {
    data::Dataset ds = bench::BuildPreset(id, 1.0, 42);
    const std::vector<int> labels = data::Labels(ds);
    std::printf("\n--- %s ---\n", bench::PresetName(id).c_str());

    std::vector<bench::MethodScore> scores;
    const core::LossMode modes[] = {core::LossMode::kL0, core::LossMode::kL1,
                                    core::LossMode::kL2};
    const char* names[] = {"L0 (recon only)", "L1 (+clustering)",
                           "L2 (full E2DTC)"};
    for (int m = 0; m < 3; ++m) {
      core::E2dtcConfig cfg = bench::BenchConfigFor(id, modes[m]);
      bench::DeepScores deep = bench::RunDeepMethods(ds, cfg);
      bench::MethodScore score = deep.e2dtc;
      score.method = names[m];
      scores.push_back(score);
      bench::PrintScoreRow(score);
    }
    bench::WriteScoresCsv("table4_" + bench::PresetName(id) + ".csv",
                          bench::PresetName(id), scores);
  }
  std::printf("\nExpected shape (paper Table IV): L2 >= L1 >= L0.\n");
  return 0;
}
