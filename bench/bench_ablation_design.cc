// Ablation harness for the design choices DESIGN.md §2 documents: each row
// re-runs the full pipeline on the Hangzhou preset with one knob moved and
// reports t2vec (L0) and E2DTC (L2) quality. Includes the paper's own
// GRU-vs-LSTM claim (Section VII-B: GRU embeds better) and the three
// reduced-scale substitutions (optimizer, Eq. 8 temperature, cell-vector
// hygiene) whose defaults EXPERIMENTS.md justifies.
#include <cstdio>
#include <functional>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Design ablations (Hangzhou preset) ===\n");

  data::Dataset ds = bench::BuildPreset(bench::PresetId::kHangzhou, 1.0, 42);
  const std::vector<int> labels = data::Labels(ds);

  struct Ablation {
    const char* name;
    std::function<void(core::E2dtcConfig*)> apply;
  };
  const Ablation ablations[] = {
      {"baseline (defaults)", [](core::E2dtcConfig*) {}},
      {"rnn = LSTM",
       [](core::E2dtcConfig* c) { c->model.rnn = core::RnnKind::kLstm; }},
      {"bidirectional encoder",
       [](core::E2dtcConfig* c) {
         c->model.bidirectional_encoder = true;
       }},
      {"optimizer = Adam lr 1e-4",
       [](core::E2dtcConfig* c) {
         c->pretrain.optimizer = core::OptimizerKind::kAdam;
         c->pretrain.lr = 1e-4f;
         c->self_train.optimizer = core::OptimizerKind::kAdam;
         c->self_train.lr = 1e-4f;
       }},
      {"optimizer = Adam lr 1e-3",
       [](core::E2dtcConfig* c) {
         c->pretrain.optimizer = core::OptimizerKind::kAdam;
         c->pretrain.lr = 1e-3f;
         c->self_train.optimizer = core::OptimizerKind::kAdam;
         c->self_train.lr = 1e-3f;
       }},
      {"alpha = cell (soft Eq.8 weights)",
       [](core::E2dtcConfig* c) { c->model.knn_alpha_meters = 300.0; }},
      {"embedding table trainable",
       [](core::E2dtcConfig* c) { c->model.freeze_embedding_table = false; }},
      {"no cell-vector smoothing",
       [](core::E2dtcConfig* c) {
         c->model.cell_embedding_smooth_rounds = 0;
       }},
      {"mean-pooled v_T",
       [](core::E2dtcConfig* c) { c->model.mean_pool_embedding = true; }},
      {"cell = 150 m",
       [](core::E2dtcConfig* c) { c->model.cell_meters = 150.0; }},
      {"cell = 600 m",
       [](core::E2dtcConfig* c) { c->model.cell_meters = 600.0; }},
      {"knn_k = 4",
       [](core::E2dtcConfig* c) { c->model.knn_k = 4; }},
      {"knn_k = 24",
       [](core::E2dtcConfig* c) { c->model.knn_k = 24; }},
      {"no token collapsing",
       [](core::E2dtcConfig* c) { c->model.collapse_consecutive = false; }},
  };

  CsvWriter csv(bench::ResultsDir() + "/ablation_design.csv");
  (void)csv.WriteRow(
      {"ablation", "l0_uacc", "l0_nmi", "l2_uacc", "l2_nmi", "seconds"});
  for (const auto& ab : ablations) {
    core::E2dtcConfig cfg =
        bench::BenchConfigFor(bench::PresetId::kHangzhou);
    ab.apply(&cfg);
    bench::DeepScores deep = bench::RunDeepMethods(ds, cfg);
    std::printf("  %-32s  L0 %.3f/%.3f   L2 %.3f/%.3f   (%.1fs)\n", ab.name,
                deep.t2vec.quality.uacc, deep.t2vec.quality.nmi,
                deep.e2dtc.quality.uacc, deep.e2dtc.quality.nmi,
                deep.e2dtc.seconds);
    std::fflush(stdout);
    (void)csv.WriteRow({ab.name,
                        StrFormat("%.4f", deep.t2vec.quality.uacc),
                        StrFormat("%.4f", deep.t2vec.quality.nmi),
                        StrFormat("%.4f", deep.e2dtc.quality.uacc),
                        StrFormat("%.4f", deep.e2dtc.quality.nmi),
                        StrFormat("%.2f", deep.e2dtc.seconds)});
  }
  (void)csv.Close();
  std::printf(
      "\nExpected: cell-vector smoothing, token collapsing, 300 m cells and "
      "the final-hidden v_T carry the quality; GRU >= LSTM (the paper's "
      "Section VII-B choice). With the full-strength cell vectors the "
      "pipeline is robust to the optimizer on this preset — the Adam "
      "collapse documented in DESIGN.md section 2 bites when the cell-vector "
      "geometry is weaker (sparser corpora, fewer skip-gram epochs).\n");
  return 0;
}
