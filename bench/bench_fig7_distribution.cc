// Reproduces Table V + Fig. 7: robustness to data distribution on Hangzhou.
// Builds a balanced and an imbalanced subset (Table V statistics printed),
// then reports UACC and NMI for all six methods on both (Fig. 7(a)/(b)).
// Paper's shape: E2DTC stays stable across distributions; the classic
// methods degrade on the imbalanced subset.
#include <cstdio>

#include "bench/common.h"
#include "data/subsets.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Table V + Fig. 7: robustness vs data distribution ===\n");

  data::Dataset full = bench::BuildPreset(bench::PresetId::kHangzhou, 1.6,
                                          42);
  // Balanced: equal per-cluster sizes. Imbalanced: geometric decay with a
  // max/min ratio ~7, mirroring Table V (25088 / 3520 ~ 7.1).
  const int per_cluster =
      data::ComputeStats(full).min_cluster_size;
  data::Dataset balanced =
      data::BalancedSubset(full, per_cluster, 3).value();
  data::Dataset imbalanced =
      data::ImbalancedSubset(full, per_cluster, 0.72,
                             std::max(4, per_cluster / 7), 3)
          .value();

  for (const auto* ds : {&balanced, &imbalanced}) {
    data::DatasetStats s = data::ComputeStats(*ds);
    std::printf("\n%s dataset: min cluster %d, max cluster %d, avg %.0f\n",
                ds == &balanced ? "Balanced" : "Imbalanced",
                s.min_cluster_size, s.max_cluster_size, s.avg_cluster_size);
  }

  CsvWriter csv(bench::ResultsDir() + "/fig7_distribution.csv");
  (void)csv.WriteRow({"distribution", "method", "uacc", "nmi"});
  for (const auto* ds : {&balanced, &imbalanced}) {
    const std::string dist_name =
        ds == &balanced ? "balanced" : "imbalanced";
    std::printf("\n--- %s ---\n", dist_name.c_str());
    std::vector<bench::MethodScore> scores;
    for (distance::Metric m :
         {distance::Metric::kEdr, distance::Metric::kLcss,
          distance::Metric::kDtw, distance::Metric::kHausdorff}) {
      scores.push_back(bench::RunClassicKMedoids(*ds, m, 2, 7));
      bench::PrintScoreRow(scores.back());
    }
    bench::DeepScores deep =
        bench::RunDeepMethods(*ds, bench::BenchConfig());
    scores.push_back(deep.t2vec);
    bench::PrintScoreRow(deep.t2vec);
    scores.push_back(deep.e2dtc);
    bench::PrintScoreRow(deep.e2dtc);
    for (const auto& s : scores) {
      (void)csv.WriteRow({dist_name, s.method,
                          StrFormat("%.4f", s.quality.uacc),
                          StrFormat("%.4f", s.quality.nmi)});
    }
  }
  (void)csv.Close();
  std::printf("\nExpected shape (paper Fig. 7): E2DTC highest and stable "
              "across both distributions; classic methods drop on the "
              "imbalanced subset.\n");
  return 0;
}
