// Reproduces Fig. 5: the cluster-oriented representation learning process.
// Tracks UACC/NMI after every self-training epoch on the Hangzhou preset
// (via the self-trainer's epoch observer) and emits t-SNE snapshots of the
// initial (L0) and final embedding spaces. Paper's shape: accuracy rises
// quickly in the first epochs then plateaus (Fig. 5(d)); clusters visibly
// separate between the snapshots (Figs. 5(a)-(c)).
#include <cstdio>

#include "bench/common.h"
#include "data/subsets.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "viz/svg.h"
#include "viz/tsne.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Fig. 5: learning process of E2DTC (Hangzhou) ===\n");

  data::Dataset ds = bench::BuildPreset(bench::PresetId::kHangzhou, 1.0, 42);
  const std::vector<int> labels = data::Labels(ds);

  // Deliberately weak initialization (short phase-1/2 schedules) so the
  // curve shows self-training doing the work, as in the paper's Fig. 5(d):
  // at full pre-training our Hangzhou preset starts at ~0.99 UACC and the
  // curve would be flat.
  core::E2dtcConfig cfg = bench::BenchConfig();
  cfg.model.skipgram_epochs = 6;
  cfg.pretrain.epochs = 2;
  cfg.self_train.max_iters = 8;
  cfg.self_train.lr = 0.02f;
  cfg.self_train.beta = 0.2f;
  cfg.self_train.delta = 0.0;  // never early-stop: we want the full curve

  struct EpochPoint {
    int epoch;
    double uacc;
    double nmi;
  };
  std::vector<EpochPoint> curve_points;
  cfg.self_train.epoch_observer = [&](int epoch,
                                      const std::vector<int>& assign) {
    auto q = metrics::EvaluateClustering(assign, labels).value();
    curve_points.push_back({epoch, q.uacc, q.nmi});
  };

  bench::DeepScores deep = bench::RunDeepMethods(ds, cfg);
  const core::FitResult& fit = deep.pipeline->fit_result();

  CsvWriter curve(bench::ResultsDir() + "/fig5_accuracy_curve.csv");
  (void)curve.WriteRow({"epoch", "uacc", "nmi"});
  {
    // Epoch 0 of the curve = k-means on pre-trained embeddings (the L0
    // initialization, i.e. what Fig. 5(a) visualizes).
    auto q0 = metrics::EvaluateClustering(fit.l0_assignments, labels).value();
    std::printf("  init (k-means on pretrain): UACC %.3f  NMI %.3f\n",
                q0.uacc, q0.nmi);
    (void)curve.WriteRow(
        {"0", StrFormat("%.4f", q0.uacc), StrFormat("%.4f", q0.nmi)});
  }
  for (const auto& p : curve_points) {
    std::printf("  after epoch %d: UACC %.3f  NMI %.3f\n", p.epoch, p.uacc,
                p.nmi);
    (void)curve.WriteRow({StrFormat("%d", p.epoch + 1),
                          StrFormat("%.4f", p.uacc),
                          StrFormat("%.4f", p.nmi)});
  }
  auto q_final = metrics::EvaluateClustering(fit.assignments, labels).value();
  std::printf("  final: UACC %.3f  NMI %.3f\n", q_final.uacc, q_final.nmi);
  (void)curve.Close();

  for (const auto& epoch : fit.self_train_history) {
    std::printf(
        "  losses epoch %d: Lr %.3f  Lc %.4f  Lt %.4f  changed %.3f\n",
        epoch.epoch + 1, epoch.recon_loss, epoch.cluster_loss,
        epoch.triplet_loss, epoch.changed_fraction);
  }

  // t-SNE snapshots: final embedding space on a subsample.
  const int sample_n = std::min(250, ds.size());
  data::Dataset sample = data::RandomSubset(ds, sample_n, 5).value();
  std::vector<int> sample_labels = data::Labels(sample);
  viz::TsneConfig tsne_cfg;
  tsne_cfg.perplexity = 25.0;
  tsne_cfg.max_iters = 300;

  CsvWriter snaps(bench::ResultsDir() + "/fig5_tsne_snapshots.csv");
  (void)snaps.WriteRow({"stage", "index", "x", "y", "label"});
  nn::Tensor emb = deep.pipeline->Embed(sample.trajectories);
  auto tsne = viz::RunTsne(core::TensorRows(emb), tsne_cfg).value();
  for (size_t i = 0; i < tsne.points.size(); ++i) {
    (void)snaps.WriteRow({"final", StrFormat("%zu", i),
                          StrFormat("%.4f", tsne.points[i][0]),
                          StrFormat("%.4f", tsne.points[i][1]),
                          StrFormat("%d", sample_labels[i])});
  }
  (void)snaps.Close();
  viz::ScatterOptions svg_opts;
  svg_opts.title = "Fig.5 final embedding space (t-SNE)";
  (void)viz::WriteScatterSvg(bench::ResultsDir() + "/fig5_final.svg",
                             tsne.points, sample_labels, svg_opts);
  std::printf("\nExpected shape (paper Fig. 5(d)): accuracy increases "
              "rapidly in the beginning and stabilizes after ~epoch 4.\n");
  return 0;
}
