// Reproduces Fig. 3: clustering time vs. datasize on the Porto and Hangzhou
// presets. Paper's shape: classic K-Medoids times grow sharply with N
// (O(N^2) distance matrices); deep methods stay nearly flat because a
// trained model only pays embedding + assignment at clustering time.
#include <cstdio>

#include "bench/common.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "data/subsets.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace e2dtc;
  bench::ApplyThreadFlags(argc, argv);
  std::printf("=== Fig. 3: scalability (clustering time vs datasize) ===\n");

  CsvWriter csv(bench::ResultsDir() + "/fig3_scalability.csv");
  (void)csv.WriteRow({"dataset", "n", "method", "seconds"});

  for (bench::PresetId id :
       {bench::PresetId::kPorto, bench::PresetId::kHangzhou}) {
    // Build the largest size once; subsets give the sweep.
    data::Dataset full = bench::BuildPreset(id, 2.0, 42);
    std::printf("\n--- %s (up to %d trajectories) ---\n",
                bench::PresetName(id).c_str(), full.size());

    // Train the deep models once, offline — Fig. 3 charges deep methods
    // only their online clustering cost, per the paper's definition.
    bench::DeepScores deep =
        bench::RunDeepMethods(bench::BuildPreset(id, 0.5, 43),
                              bench::BenchConfig());

    std::vector<int> sizes;
    for (int n = 100; n <= full.size(); n *= 2) sizes.push_back(n);
    for (int n : sizes) {
      data::Dataset sub = data::RandomSubset(full, n, 99).value();
      std::printf("  N = %4d:\n", n);

      for (distance::Metric m :
           {distance::Metric::kDtw, distance::Metric::kHausdorff}) {
        std::vector<distance::Polyline> lines = bench::ProjectAll(sub);
        Stopwatch watch;
        distance::DistanceMatrix matrix =
            distance::ComputeDistanceMatrix(lines, m);
        cluster::KMedoidsOptions opts;
        opts.k = sub.num_clusters;
        (void)cluster::KMedoids(
            n, [&](int i, int j) { return matrix.at(i, j); }, opts);
        const double secs = watch.ElapsedSeconds();
        std::printf("    %-12s %8.3f s\n",
                    (distance::MetricName(m) + "+KM").c_str(), secs);
        (void)csv.WriteRow({bench::PresetName(id), StrFormat("%d", n),
                            distance::MetricName(m) + "+KM",
                            StrFormat("%.4f", secs)});
      }

      // Deep methods: embedding + soft assignment with the trained model.
      {
        Stopwatch watch;
        (void)deep.pipeline->Assign(sub.trajectories);
        const double secs = watch.ElapsedSeconds();
        std::printf("    %-12s %8.3f s\n", "E2DTC", secs);
        (void)csv.WriteRow({bench::PresetName(id), StrFormat("%d", n),
                            "E2DTC", StrFormat("%.4f", secs)});
        // t2vec + k-means pays embedding + a k-means pass; nearly identical
        // online cost, so report the same measurement basis.
        Stopwatch watch2;
        nn::Tensor emb = deep.pipeline->Embed(sub.trajectories);
        cluster::KMeansOptions km;
        km.k = sub.num_clusters;
        km.num_init = 1;
        (void)cluster::KMeans(core::TensorRows(emb), km);
        const double secs2 = watch2.ElapsedSeconds();
        std::printf("    %-12s %8.3f s\n", "t2vec+km", secs2);
        (void)csv.WriteRow({bench::PresetName(id), StrFormat("%d", n),
                            "t2vec+km", StrFormat("%.4f", secs2)});
      }
    }
  }
  (void)csv.Close();
  std::printf("\nExpected shape (paper Fig. 3): classic methods grow "
              "superlinearly; deep methods stay nearly flat.\n");
  return 0;
}
