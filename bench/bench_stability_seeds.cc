// Multi-seed stability check supporting the paper's protocol ("we repeat it
// twenty times and report the average performance", Section VII-B): fits
// the deep pipeline on the Hangzhou preset with several dataset and model
// seeds and reports mean +/- stddev of UACC/NMI for t2vec and E2DTC. The
// reproduction's headline claims should not hinge on one lucky seed.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

struct Series {
  std::vector<double> values;
  void Add(double v) { values.push_back(v); }
  double Mean() const {
    double s = 0.0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
  }
  double Stddev() const {
    const double m = Mean();
    double s = 0.0;
    for (double v : values) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values.size()));
  }
};

}  // namespace

int main() {
  using namespace e2dtc;
  std::printf("=== Seed stability (Hangzhou preset, deep methods) ===\n");

  const uint64_t kSeeds[] = {42, 1001, 7777};
  Series t2vec_uacc, t2vec_nmi, e2dtc_uacc, e2dtc_nmi;

  CsvWriter csv(bench::ResultsDir() + "/stability_seeds.csv");
  (void)csv.WriteRow({"seed", "method", "uacc", "nmi"});
  for (uint64_t seed : kSeeds) {
    data::Dataset ds =
        bench::BuildPreset(bench::PresetId::kHangzhou, 1.0, seed);
    core::E2dtcConfig cfg = bench::BenchConfigFor(bench::PresetId::kHangzhou);
    cfg.model.seed = seed + 1;
    cfg.pretrain.seed = seed + 2;
    cfg.self_train.seed = seed + 3;
    bench::DeepScores deep = bench::RunDeepMethods(ds, cfg);
    std::printf("  seed %llu: t2vec %.3f/%.3f  E2DTC %.3f/%.3f\n",
                static_cast<unsigned long long>(seed),
                deep.t2vec.quality.uacc, deep.t2vec.quality.nmi,
                deep.e2dtc.quality.uacc, deep.e2dtc.quality.nmi);
    std::fflush(stdout);
    t2vec_uacc.Add(deep.t2vec.quality.uacc);
    t2vec_nmi.Add(deep.t2vec.quality.nmi);
    e2dtc_uacc.Add(deep.e2dtc.quality.uacc);
    e2dtc_nmi.Add(deep.e2dtc.quality.nmi);
    (void)csv.WriteRow({StrFormat("%llu", (unsigned long long)seed), "t2vec",
                        StrFormat("%.4f", deep.t2vec.quality.uacc),
                        StrFormat("%.4f", deep.t2vec.quality.nmi)});
    (void)csv.WriteRow({StrFormat("%llu", (unsigned long long)seed), "E2DTC",
                        StrFormat("%.4f", deep.e2dtc.quality.uacc),
                        StrFormat("%.4f", deep.e2dtc.quality.nmi)});
  }
  (void)csv.Close();
  std::printf("\n  t2vec:  UACC %.3f +/- %.3f   NMI %.3f +/- %.3f\n",
              t2vec_uacc.Mean(), t2vec_uacc.Stddev(), t2vec_nmi.Mean(),
              t2vec_nmi.Stddev());
  std::printf("  E2DTC:  UACC %.3f +/- %.3f   NMI %.3f +/- %.3f\n",
              e2dtc_uacc.Mean(), e2dtc_uacc.Stddev(), e2dtc_nmi.Mean(),
              e2dtc_nmi.Stddev());
  std::printf("\nExpected: E2DTC mean >= t2vec mean with small spread.\n");
  return 0;
}
