// Reproduces Fig. 6: robustness to the cluster count k on Hangzhou.
// (a) elbow curve E_k for k = 2..22 over the learned embeddings — the knee
//     should land at the ground-truth k = 7;
// (b) NMI for k = 4..9 for E2DTC vs DTW + K-Medoids — E2DTC should stay
//     high under a wrong k while the classic method trails it everywhere.
#include <cstdio>

#include "bench/common.h"
#include "cluster/elbow.h"
#include "cluster/kmedoids.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Fig. 6: robustness analysis vs k (Hangzhou) ===\n");

  data::Dataset ds = bench::BuildPreset(bench::PresetId::kHangzhou, 1.0, 42);
  const std::vector<int> labels = data::Labels(ds);

  // One pre-trained model provides the embedding space for the elbow scan.
  bench::DeepScores base = bench::RunDeepMethods(ds, bench::BenchConfig());
  const std::vector<std::vector<float>> features =
      core::TensorRows(base.pipeline->fit_result().l0_embeddings);

  // --- Fig. 6(a): elbow curve. ---
  std::printf("\n-- Fig. 6(a): E_k vs k --\n");
  cluster::KMeansOptions km;
  km.seed = 5;
  auto elbow = cluster::ElbowScan(features, 2, 22, km).value();
  CsvWriter csv_a(bench::ResultsDir() + "/fig6a_elbow.csv");
  (void)csv_a.WriteRow({"k", "inertia"});
  for (const auto& p : elbow.curve) {
    std::printf("  k = %2d  E_k = %.1f\n", p.k, p.inertia);
    (void)csv_a.WriteRow(
        {StrFormat("%d", p.k), StrFormat("%.4f", p.inertia)});
  }
  (void)csv_a.Close();
  std::printf("  elbow k = %d (ground truth k = %d)\n", elbow.best_k,
              ds.num_clusters);

  // --- Fig. 6(b): NMI under wrong k. ---
  std::printf("\n-- Fig. 6(b): NMI vs k, E2DTC vs DTW+KM --\n");
  // DTW distance matrix computed once.
  const std::vector<distance::Polyline> lines = bench::ProjectAll(ds);
  distance::DistanceMatrix dtw =
      distance::ComputeDistanceMatrix(lines, distance::Metric::kDtw);

  CsvWriter csv_b(bench::ResultsDir() + "/fig6b_nmi_vs_k.csv");
  (void)csv_b.WriteRow({"k", "method", "nmi"});
  for (int k = 4; k <= 9; ++k) {
    core::E2dtcConfig cfg = bench::BenchConfig();
    cfg.self_train.k = k;
    bench::DeepScores deep = bench::RunDeepMethods(ds, cfg);
    const double nmi_deep =
        metrics::NormalizedMutualInformation(
            deep.pipeline->fit_result().assignments, labels)
            .value();

    cluster::KMedoidsOptions opts;
    opts.k = k;
    opts.seed = 11;
    auto kmed = cluster::KMedoids(
                    ds.size(),
                    [&](int i, int j) { return dtw.at(i, j); }, opts)
                    .value();
    const double nmi_classic =
        metrics::NormalizedMutualInformation(kmed.assignments, labels)
            .value();

    std::printf("  k = %d:  E2DTC NMI %.3f   DTW+KM NMI %.3f\n", k,
                nmi_deep, nmi_classic);
    (void)csv_b.WriteRow(
        {StrFormat("%d", k), "E2DTC", StrFormat("%.4f", nmi_deep)});
    (void)csv_b.WriteRow(
        {StrFormat("%d", k), "DTW+KM", StrFormat("%.4f", nmi_classic)});
  }
  (void)csv_b.Close();
  std::printf("\nExpected shape (paper Fig. 6): elbow at the true k; E2DTC "
              "NMI stays high and above DTW+KM for every k.\n");
  return 0;
}
