// Reproduces Table III: clustering performance (UACC, NMI, RI) of the four
// classic K-Medoids baselines, t2vec + k-means, and E2DTC on the three
// dataset presets. The paper's qualitative shape to reproduce:
//   E2DTC > t2vec + k-means > classic K-Medoids on every dataset,
// with the classic metric ranking flipping between datasets.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace e2dtc;
  bench::ApplyThreadFlags(argc, argv);
  std::printf("=== Table III: clustering performance of all approaches ===\n");

  const int kClassicRuns = 3;  // paper: 20 repetitions; scaled down
  for (bench::PresetId id : {bench::PresetId::kGeoLife,
                             bench::PresetId::kPorto,
                             bench::PresetId::kHangzhou}) {
    data::Dataset ds = bench::BuildPreset(id, 1.0, 42);
    std::printf("\n--- %s (%d trajectories, k = %d) ---\n",
                bench::PresetName(id).c_str(), ds.size(), ds.num_clusters);

    std::vector<bench::MethodScore> scores;
    for (distance::Metric m :
         {distance::Metric::kEdr, distance::Metric::kLcss,
          distance::Metric::kDtw, distance::Metric::kHausdorff}) {
      scores.push_back(bench::RunClassicKMedoids(ds, m, kClassicRuns, 7));
      bench::PrintScoreRow(scores.back());
    }
    bench::DeepScores deep = bench::RunDeepMethods(ds, bench::BenchConfigFor(id));
    scores.push_back(deep.t2vec);
    bench::PrintScoreRow(deep.t2vec);
    scores.push_back(deep.e2dtc);
    bench::PrintScoreRow(deep.e2dtc);

    // Paper-style improvement summary.
    double best_classic = 0.0;
    for (size_t i = 0; i < 4; ++i) {
      best_classic = std::max(best_classic, scores[i].quality.uacc);
    }
    std::printf("  E2DTC vs best classic: %+.1f%% UACC;  vs t2vec: "
                "%+.1f%% UACC\n",
                100.0 * (deep.e2dtc.quality.uacc - best_classic),
                100.0 * (deep.e2dtc.quality.uacc - deep.t2vec.quality.uacc));

    bench::WriteScoresCsv(
        "table3_" + bench::PresetName(id) + ".csv", bench::PresetName(id),
        scores);
  }
  return 0;
}
