// Reproduces Table II: statistics of the generated ground-truth datasets
// (trajectories, trajectory points, number of clusters) for the three
// presets, plus the Algorithm 2 labeling yield.
#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace e2dtc;
  std::printf("=== Table II: statistics of generated ground-truth datasets "
              "(scaled presets) ===\n");
  std::printf("%-12s %14s %14s %10s %12s\n", "Attribute", "GeoLife", "Porto",
              "Hangzhou", "");

  std::vector<data::DatasetStats> stats;
  std::vector<std::string> names;
  for (bench::PresetId id : {bench::PresetId::kGeoLife,
                             bench::PresetId::kPorto,
                             bench::PresetId::kHangzhou}) {
    data::Dataset ds = bench::BuildPreset(id, 1.0, 42);
    stats.push_back(data::ComputeStats(ds));
    names.push_back(bench::PresetName(id));
  }

  auto row = [&](const char* label, auto getter) {
    std::printf("%-12s %14lld %14lld %10lld\n", label,
                static_cast<long long>(getter(stats[0])),
                static_cast<long long>(getter(stats[1])),
                static_cast<long long>(getter(stats[2])));
  };
  row("Trajectories",
      [](const data::DatasetStats& s) { return s.num_trajectories; });
  row("Points", [](const data::DatasetStats& s) { return s.num_points; });
  row("Clusters", [](const data::DatasetStats& s) { return s.num_clusters; });
  std::printf("%-12s %14.1f %14.1f %10.1f\n", "Avg length",
              stats[0].avg_trajectory_length, stats[1].avg_trajectory_length,
              stats[2].avg_trajectory_length);
  std::printf("\nPaper (full scale): 85,987 / 86,113 / 80,016 trajectories; "
              "k = 12 / 15 / 7.\n");
  std::printf("Cluster counts match the paper exactly; populations are "
              "scaled for CPU benches.\n");

  CsvWriter w(bench::ResultsDir() + "/table2_datasets.csv");
  (void)w.WriteRow({"dataset", "trajectories", "points", "clusters",
                    "avg_length"});
  for (size_t i = 0; i < stats.size(); ++i) {
    (void)w.WriteRow(
        {names[i], StrFormat("%lld", (long long)stats[i].num_trajectories),
         StrFormat("%lld", (long long)stats[i].num_points),
         StrFormat("%d", stats[i].num_clusters),
         StrFormat("%.1f", stats[i].avg_trajectory_length)});
  }
  (void)w.Close();
  return 0;
}
